// Tests of the interleaved rANS entropy backend (DESIGN.md §13): the generic
// coder in imaging/ans.h, the lossy-codec payload round trip, the
// Huffman-vs-rANS equivalence guarantees, and the EntropyCost calibration.
#include "imaging/ans.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <vector>

#include "core/pipeline.h"
#include "imaging/codec.h"
#include "imaging/codec_detail.h"
#include "imaging/fingerprint.h"
#include "imaging/ssim.h"
#include "imaging/synth.h"
#include "imaging/variants.h"
#include "serving/tier_cache.h"
#include "util/error.h"
#include "util/fault.h"
#include "util/rng.h"

namespace aw4a::imaging {
namespace {

// ---------------------------------------------------------------------------
// Generic coder: tables
// ---------------------------------------------------------------------------

std::vector<std::uint64_t> skewed_counts(Rng& rng, int n, double decay) {
  std::vector<std::uint64_t> counts(static_cast<std::size_t>(n), 0);
  double weight = 1.0;
  for (int i = 0; i < n; ++i) {
    counts[static_cast<std::size_t>(i)] =
        static_cast<std::uint64_t>(rng.uniform(0.0, 1000.0 * weight));
    weight *= decay;
  }
  return counts;
}

void expect_table_invariants(const ans::FreqTable& table) {
  ASSERT_FALSE(table.symbols.empty());
  ASSERT_EQ(table.symbols.size(), table.freqs.size());
  ASSERT_EQ(table.symbols.size(), table.cum.size());
  std::uint32_t total = 0;
  for (std::size_t e = 0; e < table.symbols.size(); ++e) {
    if (e > 0) {
      EXPECT_LT(table.symbols[e - 1], table.symbols[e]);
    }
    EXPECT_LE(table.symbols[e], ans::kEscapeSymbol);
    EXPECT_GE(table.freqs[e], 1u);
    EXPECT_EQ(table.cum[e], total);
    total += table.freqs[e];
  }
  EXPECT_EQ(total, ans::kScaleTotal);
  // Every slot carries the packed (freq, bias, symbol) of the entry covering
  // it, so arbitrary decoder states always resolve to *some* symbol (no
  // out-of-bounds lookups ever). ESCAPE is recognized by slot position.
  ASSERT_EQ(table.packed.size(), ans::kScaleTotal);
  EXPECT_EQ(table.esc_start,
            table.has_escape() ? table.cum.back() : ans::kScaleTotal);
  for (std::size_t e = 0; e < table.symbols.size(); ++e) {
    for (std::uint32_t slot = table.cum[e];
         slot < static_cast<std::uint32_t>(table.cum[e]) + table.freqs[e]; ++slot) {
      EXPECT_EQ(table.packed[slot],
                ans::pack_slot(table.freqs[e], slot - table.cum[e], table.symbols[e]))
          << "slot=" << slot;
    }
  }
  // Encoder reciprocals are exact stand-ins for division by freq.
  ASSERT_EQ(table.recip.size(), table.freqs.size());
  for (std::size_t e = 0; e < table.freqs.size(); ++e) {
    const std::uint64_t f = table.freqs[e];
    EXPECT_EQ(table.recip[e], ((std::uint64_t{1} << ans::kRecipShift) + f - 1) / f);
  }
  for (int s = 0; s <= 256; ++s) {
    const bool present =
        std::find(table.symbols.begin(), table.symbols.end(),
                  static_cast<std::uint16_t>(s)) != table.symbols.end();
    EXPECT_EQ(table.has(s), present);
  }
}

TEST(AnsTable, NormalizationInvariants) {
  Rng rng(7);
  for (const double decay : {1.0, 0.9, 0.5}) {
    for (const int n : {4, 16, 200, 256}) {
      const std::vector<std::uint64_t> counts = skewed_counts(rng, n, decay);
      expect_table_invariants(ans::build_table(counts.data(), n));
    }
  }
}

TEST(AnsTable, SingleSymbolCollapsesToOneEntry) {
  std::vector<std::uint64_t> counts(16, 0);
  counts[3] = 12345;
  const ans::FreqTable table = ans::build_table(counts.data(), 16);
  expect_table_invariants(table);
  ASSERT_TRUE(table.has(3));
  // The lone symbol owns (nearly) the whole scale; coding it is ~free.
  const std::uint16_t e =
      static_cast<std::uint16_t>(table.entry_of[3] - 1);
  EXPECT_GE(table.freqs[e], ans::kScaleTotal - 16);
}

TEST(AnsTable, AllZeroCountsBuildPureEscapeTable) {
  const std::vector<std::uint64_t> counts(256, 0);
  const ans::FreqTable table = ans::build_table(counts.data(), 256);
  expect_table_invariants(table);
  ASSERT_TRUE(table.has_escape());
  EXPECT_EQ(table.symbols.size(), 1u);
  EXPECT_EQ(table.freqs[0], ans::kScaleTotal);
}

TEST(AnsTable, SerializationRoundTrip) {
  Rng rng(11);
  for (const double decay : {1.0, 0.7}) {
    for (const int n : {3, 64, 256}) {
      const std::vector<std::uint64_t> counts = skewed_counts(rng, n, decay);
      const ans::FreqTable table = ans::build_table(counts.data(), n);
      std::vector<std::uint8_t> blob;
      ans::serialize_table(table, blob);
      EXPECT_EQ(blob.size(), ans::serialized_table_bytes(table));
      ans::ByteReader in(blob.data(), blob.size());
      const ans::FreqTable back = ans::deserialize_table(in);
      EXPECT_EQ(in.remaining(), 0u);
      EXPECT_EQ(back.symbols, table.symbols);
      EXPECT_EQ(back.freqs, table.freqs);
      expect_table_invariants(back);
    }
  }
}

TEST(AnsTable, DeserializeRejectsTruncatedAndCorrupt) {
  Rng rng(13);
  const std::vector<std::uint64_t> counts = skewed_counts(rng, 64, 0.8);
  const ans::FreqTable table = ans::build_table(counts.data(), 64);
  std::vector<std::uint8_t> blob;
  ans::serialize_table(table, blob);
  // Every truncation point fails cleanly.
  for (std::size_t cut = 0; cut < blob.size(); ++cut) {
    ans::ByteReader in(blob.data(), cut);
    EXPECT_THROW((void)ans::deserialize_table(in), Error) << "cut=" << cut;
  }
  // A tampered entry count either overruns the buffer or breaks the
  // frequency-sum invariant; either way it must throw, not misparse.
  for (const std::uint16_t bad_count : {std::uint16_t{0}, std::uint16_t{258},
                                        std::uint16_t{0xffff}}) {
    std::vector<std::uint8_t> tampered = blob;
    tampered[0] = static_cast<std::uint8_t>(bad_count & 0xff);
    tampered[1] = static_cast<std::uint8_t>(bad_count >> 8);
    ans::ByteReader in(tampered.data(), tampered.size());
    EXPECT_THROW((void)ans::deserialize_table(in), Error);
  }
}

// ---------------------------------------------------------------------------
// Generic coder: interleaved streams
// ---------------------------------------------------------------------------

// Encodes `symbols` under a table built from their histogram (absent symbols
// escape to a literal side stream), decodes forward, and expects an exact
// round trip plus a clean end-of-stream check.
void round_trip(const std::vector<int>& symbols, int n_alphabet) {
  std::vector<std::uint64_t> counts(static_cast<std::size_t>(n_alphabet), 0);
  for (const int s : symbols) counts[static_cast<std::size_t>(s)]++;
  const ans::FreqTable table = ans::build_table(counts.data(), n_alphabet);
  const std::vector<ans::FreqTable> tables = {table};

  std::vector<ans::SymbolRef> ops;
  ans::BitWriter side;
  for (const int s : symbols) {
    if (table.has(s)) {
      ops.push_back({0, static_cast<std::uint16_t>(s)});
    } else {
      ops.push_back({0, static_cast<std::uint16_t>(ans::kEscapeSymbol)});
      side.put(static_cast<std::uint32_t>(s), 8);
    }
  }
  const ans::EncodedStreams enc = ans::encode_interleaved(ops, tables);
  const std::vector<std::uint8_t> side_bytes = side.finish();

  ans::InterleavedDecoder dec(enc.states, enc.stream.data(), enc.stream.size());
  ans::BitReader side_in(side_bytes.data(), side_bytes.size());
  for (std::size_t i = 0; i < symbols.size(); ++i) {
    int s = dec.get(table);
    if (s == ans::kEscapeSymbol && !table.has(symbols[i])) {
      s = static_cast<int>(side_in.get(8));
    }
    ASSERT_EQ(s, symbols[i]) << "at index " << i;
  }
  dec.expect_exhausted();
}

TEST(AnsStream, RoundTripUniformAlphabet) {
  Rng rng(17);
  std::vector<int> symbols(5000);
  for (int& s : symbols) s = static_cast<int>(rng.uniform_int(0, 255));
  round_trip(symbols, 256);
}

TEST(AnsStream, RoundTripSkewedAlphabet) {
  Rng rng(19);
  std::vector<int> symbols;
  for (int i = 0; i < 8000; ++i) {
    // Geometric-ish: low symbols dominate, the tail is rare enough to fold
    // into ESCAPE, exercising the literal side stream.
    int s = 0;
    while (s < 255 && rng.uniform(0.0, 1.0) < 0.62) ++s;
    symbols.push_back(s);
  }
  round_trip(symbols, 256);
}

TEST(AnsStream, RoundTripSingleSymbolRun) {
  round_trip(std::vector<int>(1000, 42), 256);
}

TEST(AnsStream, RoundTripShortSequences) {
  // Fewer symbols than streams: some states never code anything.
  Rng rng(23);
  for (int len = 0; len <= 2 * ans::kNumStreams; ++len) {
    std::vector<int> symbols(static_cast<std::size_t>(len));
    for (int& s : symbols) s = static_cast<int>(rng.uniform_int(0, 15));
    round_trip(symbols, 16);
  }
}

TEST(AnsStream, MultiTableRoundTrip) {
  // Alternating contexts, as the codec's DC/AC context switching does.
  Rng rng(29);
  std::vector<std::uint64_t> c0(16, 0), c1(256, 0);
  std::vector<int> symbols(6000);
  for (std::size_t i = 0; i < symbols.size(); ++i) {
    const int n = (i % 2 == 0) ? 16 : 256;
    symbols[i] = static_cast<int>(rng.uniform_int(0, n - 1));
    ((i % 2 == 0) ? c0 : c1)[static_cast<std::size_t>(symbols[i])]++;
  }
  std::vector<ans::FreqTable> tables = {ans::build_table(c0.data(), 16),
                                        ans::build_table(c1.data(), 256)};
  std::vector<ans::SymbolRef> ops;
  for (std::size_t i = 0; i < symbols.size(); ++i) {
    ops.push_back({static_cast<std::uint16_t>(i % 2),
                   static_cast<std::uint16_t>(symbols[i])});
  }
  const ans::EncodedStreams enc = ans::encode_interleaved(ops, tables);
  ans::InterleavedDecoder dec(enc.states, enc.stream.data(), enc.stream.size());
  for (std::size_t i = 0; i < symbols.size(); ++i) {
    ASSERT_EQ(dec.get(tables[i % 2]), symbols[i]);
  }
  dec.expect_exhausted();
}

TEST(AnsStream, CompressionApproachesEntropy) {
  // A heavily skewed stream must compress well below 8 bits/symbol.
  Rng rng(31);
  std::vector<int> symbols;
  for (int i = 0; i < 20000; ++i) {
    symbols.push_back(rng.uniform(0.0, 1.0) < 0.9 ? 0
                                                  : static_cast<int>(rng.uniform_int(0, 7)));
  }
  std::vector<std::uint64_t> counts(256, 0);
  for (const int s : symbols) counts[static_cast<std::size_t>(s)]++;
  const ans::FreqTable table = ans::build_table(counts.data(), 256);
  const std::vector<ans::FreqTable> tables = {table};
  std::vector<ans::SymbolRef> ops;
  for (const int s : symbols) ops.push_back({0, static_cast<std::uint16_t>(s)});
  const ans::EncodedStreams enc = ans::encode_interleaved(ops, tables);
  const double bits_per_symbol =
      8.0 * static_cast<double>(enc.stream.size()) / static_cast<double>(symbols.size());
  EXPECT_LT(bits_per_symbol, 1.0);  // H(X) here is ~0.75 bits
}

TEST(AnsStream, TruncatedStreamFailsCleanly) {
  Rng rng(37);
  std::vector<int> symbols(2000);
  for (int& s : symbols) s = static_cast<int>(rng.uniform_int(0, 63));
  std::vector<std::uint64_t> counts(64, 0);
  for (const int s : symbols) counts[static_cast<std::size_t>(s)]++;
  const ans::FreqTable table = ans::build_table(counts.data(), 64);
  const std::vector<ans::FreqTable> tables = {table};
  std::vector<ans::SymbolRef> ops;
  for (const int s : symbols) ops.push_back({0, static_cast<std::uint16_t>(s)});
  const ans::EncodedStreams enc = ans::encode_interleaved(ops, tables);
  ASSERT_FALSE(enc.stream.empty());

  // A full decode consumes every stream byte, so ANY truncation is caught:
  // either a renormalization read throws, or the final exhaustion check does.
  for (std::size_t cut = 0; cut < enc.stream.size();
       cut += std::max<std::size_t>(1, enc.stream.size() / 97)) {
    auto decode_all = [&] {
      ans::InterleavedDecoder dec(enc.states, enc.stream.data(), cut);
      for (std::size_t i = 0; i < symbols.size(); ++i) (void)dec.get(table);
      dec.expect_exhausted();
    };
    EXPECT_THROW(decode_all(), Error) << "cut=" << cut;
  }
}

TEST(AnsStream, GarbageInputNeverReadsOutOfBounds) {
  // Arbitrary states and stream bytes must decode *something* or throw — the
  // sanitizer legs of tier1.sh are the real assertion here.
  Rng rng(41);
  std::vector<std::uint64_t> counts(16, 1);
  const ans::FreqTable table = ans::build_table(counts.data(), 16);
  for (int trial = 0; trial < 50; ++trial) {
    std::array<std::uint32_t, ans::kNumStreams> states;
    for (auto& s : states) s = static_cast<std::uint32_t>(rng.uniform_int(0, (1ll << 32) - 1));
    std::vector<std::uint8_t> garbage(
        static_cast<std::size_t>(rng.uniform_int(0, 63)));
    for (auto& b : garbage) b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    try {
      ans::InterleavedDecoder dec(states, garbage.data(), garbage.size());
      for (int i = 0; i < 200; ++i) {
        const int s = dec.get(table);
        ASSERT_GE(s, 0);
        ASSERT_LE(s, 256);
      }
      dec.expect_exhausted();
    } catch (const Error&) {
      // Clean rejection is equally fine.
    }
  }
}

TEST(AnsBits, WriterReaderRoundTrip) {
  Rng rng(43);
  std::vector<std::pair<std::uint32_t, int>> fields;
  ans::BitWriter writer;
  for (int i = 0; i < 3000; ++i) {
    const int nbits = 1 + static_cast<int>(rng.uniform_int(0, 15));
    const std::uint32_t value =
        static_cast<std::uint32_t>(rng.uniform_int(0, (1ll << nbits) - 1));
    fields.emplace_back(value, nbits);
    writer.put(value, nbits);
  }
  const std::vector<std::uint8_t> bytes = writer.finish();
  ans::BitReader reader(bytes.data(), bytes.size());
  for (const auto& [value, nbits] : fields) {
    ASSERT_EQ(reader.get(nbits), value);
  }
  EXPECT_EQ(reader.consumed_bytes(), bytes.size());
  // Reading past the padded end throws.
  EXPECT_THROW((void)reader.get(16), Error);
}

// ---------------------------------------------------------------------------
// Codec payload: exact round trip across the ladder
// ---------------------------------------------------------------------------

const std::vector<int>& ladder_qualities() {
  static const std::vector<int> kLadder = {92, 85, 75, 65, 55, 45, 35};
  return kLadder;
}

Raster synth_raster(std::uint64_t seed, ImageClass cls, int w, int h) {
  Rng rng(seed);
  return synth_image(rng, cls, w, h);
}

Encoded encode_with(ImageFormat format, const Raster& img, int quality,
                    EntropyBackend backend) {
  return format == ImageFormat::kJpeg ? jpeg_encode(img, quality, backend)
                                      : webp_encode(img, quality, backend);
}

TEST(ImagingAnsCodec, LevelsRoundTripAcrossLadder) {
  for (const ImageFormat format : {ImageFormat::kJpeg, ImageFormat::kWebp}) {
    const Raster img = synth_raster(51, ImageClass::kPhoto, 96, 72);
    const detail::LossyParams params = detail::lossy_params_for(format);
    const detail::PreparedLossy prep = detail::prepare_lossy(img, params);
    for (const int q : ladder_qualities()) {
      const Encoded enc = encode_with(format, img, q, EntropyBackend::kRans);
      ASSERT_EQ(enc.entropy, EntropyBackend::kRans);
      ASSERT_FALSE(enc.payload.empty());

      const detail::DecodedLossy expected = detail::quantize_levels(prep, q, params);
      const detail::DecodedLossy parsed =
          detail::rans_parse_payload(enc.payload.data(), enc.payload.size());
      EXPECT_EQ(parsed.format, format);
      EXPECT_EQ(parsed.quality, q);
      EXPECT_EQ(parsed.width, expected.width);
      EXPECT_EQ(parsed.height, expected.height);
      // Bit-exact coefficient levels: the entropy backend is lossless.
      EXPECT_EQ(parsed.luma, expected.luma) << to_string(format) << " q" << q;
      EXPECT_EQ(parsed.cb, expected.cb) << to_string(format) << " q" << q;
      EXPECT_EQ(parsed.cr, expected.cr) << to_string(format) << " q" << q;
    }
  }
}

TEST(ImagingAnsCodec, DecodedRasterBitExact) {
  // Odd dims exercise the partial-block edges of the reconstruction.
  const Raster img = synth_raster(53, ImageClass::kScreenshot, 93, 61);
  for (const ImageFormat format : {ImageFormat::kJpeg, ImageFormat::kWebp}) {
    for (const int q : {85, 55, 35}) {
      const Encoded enc = encode_with(format, img, q, EntropyBackend::kRans);
      const Raster decoded = lossy_decode(enc.payload);
      ASSERT_EQ(decoded.width(), enc.decoded.width());
      ASSERT_EQ(decoded.height(), enc.decoded.height());
      EXPECT_TRUE(decoded.pixels() == enc.decoded.pixels())
          << to_string(format) << " q" << q;
    }
  }
}

TEST(ImagingAnsCodec, BackendsDecodeIdentically) {
  // Entropy coding is lossless, so the two backends must reconstruct the
  // same raster — equal bytes-at-equal-SSIM comparisons need no re-measuring.
  const Raster img = synth_raster(59, ImageClass::kPhoto, 80, 80);
  for (const ImageFormat format : {ImageFormat::kJpeg, ImageFormat::kWebp}) {
    for (const int q : {92, 65, 35}) {
      const Encoded huff = encode_with(format, img, q, EntropyBackend::kHuffman);
      const Encoded rans = encode_with(format, img, q, EntropyBackend::kRans);
      EXPECT_TRUE(huff.decoded.pixels() == rans.decoded.pixels())
          << to_string(format) << " q" << q;
    }
  }
}

TEST(ImagingAnsCodec, RansPayloadBeatsHuffmanModelAggregate) {
  // The headline claim, in miniature: over the quality ladder the measured
  // rANS payload undercuts the Huffman-model payload by >= 5% in aggregate
  // (bench_perf_pipeline gates the full-size version of this).
  double huff_total = 0.0, rans_total = 0.0;
  for (const std::uint64_t seed : {61ull, 67ull}) {
    const Raster img = synth_raster(seed, ImageClass::kPhoto, 96, 96);
    for (const int q : ladder_qualities()) {
      huff_total += static_cast<double>(
          jpeg_encode(img, q, EntropyBackend::kHuffman).payload_bytes());
      rans_total += static_cast<double>(
          jpeg_encode(img, q, EntropyBackend::kRans).payload_bytes());
    }
  }
  EXPECT_LT(rans_total, 0.95 * huff_total);
}

TEST(ImagingAnsCodec, EntropyCostCalibration) {
  // Pins EntropyCost::kRansVsHuffman to the measured mean ratio so drift in
  // either coder (model recalibration, table format changes) shows up here.
  double ratio_sum = 0.0;
  int n = 0;
  for (const ImageClass cls : {ImageClass::kPhoto, ImageClass::kScreenshot}) {
    const Raster img = synth_raster(71 + static_cast<int>(cls), cls, 96, 96);
    for (const int q : ladder_qualities()) {
      const double huff = static_cast<double>(
          jpeg_encode(img, q, EntropyBackend::kHuffman).payload_bytes());
      const double rans = static_cast<double>(
          jpeg_encode(img, q, EntropyBackend::kRans).payload_bytes());
      ASSERT_GT(huff, 0.0);
      ratio_sum += rans / huff;
      ++n;
    }
  }
  const double mean_ratio = ratio_sum / n;
  EXPECT_NEAR(mean_ratio, detail::EntropyCost::kRansVsHuffman, 0.06)
      << "re-measure and update EntropyCost::kRansVsHuffman";
  EXPECT_DOUBLE_EQ(detail::EntropyCost::payload_multiplier(EntropyBackend::kRans),
                   detail::EntropyCost::kRansVsHuffman);
  EXPECT_DOUBLE_EQ(detail::EntropyCost::payload_multiplier(EntropyBackend::kHuffman), 1.0);
}

TEST(ImagingAnsCodec, HuffmanPathCarriesNoPayload) {
  const Raster img = synth_raster(73, ImageClass::kPhoto, 48, 48);
  const Encoded enc = jpeg_encode(img, 75, EntropyBackend::kHuffman);
  EXPECT_EQ(enc.entropy, EntropyBackend::kHuffman);
  EXPECT_TRUE(enc.payload.empty());
}

// ---------------------------------------------------------------------------
// Codec payload: corrupt-input robustness
// ---------------------------------------------------------------------------

TEST(ImagingAnsCodec, TruncatedPayloadThrows) {
  const Raster img = synth_raster(79, ImageClass::kPhoto, 64, 48);
  const Encoded enc = jpeg_encode(img, 65, EntropyBackend::kRans);
  const std::vector<std::uint8_t>& blob = enc.payload;
  ASSERT_GT(blob.size(), 32u);
  // Every header truncation plus a sample of body truncations.
  std::vector<std::size_t> cuts;
  for (std::size_t cut = 0; cut < 32; ++cut) cuts.push_back(cut);
  for (std::size_t cut = 32; cut < blob.size();
       cut += std::max<std::size_t>(1, blob.size() / 64)) {
    cuts.push_back(cut);
  }
  for (const std::size_t cut : cuts) {
    const std::vector<std::uint8_t> truncated(blob.begin(),
                                              blob.begin() + static_cast<long>(cut));
    EXPECT_THROW((void)lossy_decode(truncated), Error) << "cut=" << cut;
  }
}

TEST(ImagingAnsCodec, TrailingBytesRejected) {
  const Raster img = synth_raster(83, ImageClass::kPhoto, 48, 48);
  std::vector<std::uint8_t> blob = jpeg_encode(img, 65, EntropyBackend::kRans).payload;
  blob.push_back(0);
  EXPECT_THROW((void)lossy_decode(blob), Error);
}

TEST(ImagingAnsCodec, CorruptHeaderFieldsThrow) {
  const Raster img = synth_raster(89, ImageClass::kPhoto, 48, 48);
  const std::vector<std::uint8_t> blob = jpeg_encode(img, 65, EntropyBackend::kRans).payload;
  auto expect_rejected = [&](std::size_t offset, std::uint8_t value) {
    std::vector<std::uint8_t> bad = blob;
    bad[offset] = value;
    EXPECT_THROW((void)lossy_decode(bad), Error) << "offset=" << offset;
  };
  expect_rejected(0, 0x00);   // magic lo
  expect_rejected(1, 0x00);   // magic hi
  expect_rejected(2, 99);     // version
  expect_rejected(3, 7);      // format
  expect_rejected(4, 0);      // quality 0
  expect_rejected(4, 101);    // quality > 100
  expect_rejected(6, 0xff);   // width -> dims product over cap / mismatch
  expect_rejected(7, 0xff);
}

TEST(ImagingAnsCodec, BitFlippedBodyNeverCrashes) {
  // Deterministic bit flips across the whole blob: each either throws a
  // recoverable Error or decodes to *something* — never UB, never LogicError
  // (the sanitizer legs of tier1.sh re-run this test under ASan/UBSan/TSan).
  const Raster img = synth_raster(97, ImageClass::kPhoto, 64, 64);
  const std::vector<std::uint8_t> blob = jpeg_encode(img, 55, EntropyBackend::kRans).payload;
  for (std::size_t offset = 0; offset < blob.size();
       offset += std::max<std::size_t>(1, blob.size() / 128)) {
    for (const std::uint8_t mask : {std::uint8_t{0x01}, std::uint8_t{0x80}}) {
      std::vector<std::uint8_t> bad = blob;
      bad[offset] = static_cast<std::uint8_t>(bad[offset] ^ mask);
      try {
        (void)lossy_decode(bad);
      } catch (const Error&) {
        // Clean rejection.
      }
    }
  }
}

// ---------------------------------------------------------------------------
// SIMD dispatch: the AVX2 path must be indistinguishable from scalar
// ---------------------------------------------------------------------------

/// Forces a dispatch mode for one test body and restores kAuto on exit, so
/// test order can't leak a forced mode into unrelated codec tests.
class ScopedSimdMode {
 public:
  explicit ScopedSimdMode(ans::SimdMode mode) { ans::set_simd_mode(mode); }
  ~ScopedSimdMode() { ans::set_simd_mode(ans::SimdMode::kAuto); }
};

/// Multi-table op sequence with a tunable escape share, mirroring the
/// codec's DC/AC context alternation. Returns the expected symbol per op.
struct SimdFixtureStreams {
  std::vector<ans::FreqTable> tables;
  std::vector<ans::SymbolRef> ops;
  std::vector<int> expected;
  ans::EncodedStreams enc;
};

SimdFixtureStreams make_simd_fixture(std::uint64_t seed, int n_ops, double escape_share) {
  Rng rng(seed);
  std::vector<std::uint64_t> c0(16, 0), c1(256, 0);
  std::vector<int> symbols(static_cast<std::size_t>(n_ops));
  for (std::size_t i = 0; i < symbols.size(); ++i) {
    const bool small = i % 2 == 0;
    if (!small && rng.uniform(0.0, 1.0) < escape_share) {
      symbols[i] = 255;  // left out of the histogram below -> escapes
      continue;
    }
    int s = 0;
    while (s < (small ? 14 : 200) && rng.uniform(0.0, 1.0) < 0.55) ++s;
    symbols[i] = s;
    (small ? c0 : c1)[static_cast<std::size_t>(s)]++;
  }
  SimdFixtureStreams fx;
  fx.tables = {ans::build_table(c0.data(), 16), ans::build_table(c1.data(), 256)};
  for (std::size_t i = 0; i < symbols.size(); ++i) {
    const auto table = static_cast<std::uint16_t>(i % 2);
    const ans::FreqTable& t = fx.tables[table];
    int s = symbols[i];
    if (!t.has(s)) {
      // Out-of-table symbols ride the escape entry when the sweep kept one;
      // a table without ESCAPE codes every histogram symbol, so substitute
      // one of those (the fixture only needs a decodable op sequence).
      s = t.has_escape() ? ans::kEscapeSymbol : t.symbols[0];
    }
    fx.ops.push_back({table, static_cast<std::uint16_t>(s)});
    fx.expected.push_back(s);
  }
  fx.enc = ans::encode_interleaved(fx.ops, fx.tables);
  return fx;
}

std::vector<int> decode_all_packed(const SimdFixtureStreams& fx, ans::SimdMode mode) {
  ScopedSimdMode guard(mode);
  const ans::PackedSet set(fx.tables);
  ans::PackedDecoder dec(fx.enc.states, fx.enc.stream.data(), fx.enc.stream.size(), set);
  std::vector<int> out;
  out.reserve(fx.expected.size());
  for (const ans::SymbolRef& op : fx.ops) out.push_back(dec.get(op.table));
  dec.expect_exhausted();
  return out;
}

TEST(AnsSimd, PackedScalarMatchesPinnedReference) {
  // The packed production decoder forced scalar == the pinned
  // InterleavedDecoder, symbol for symbol, escapes included.
  for (const double esc : {0.0, 0.35}) {
    const SimdFixtureStreams fx = make_simd_fixture(107 + static_cast<int>(esc * 100),
                                                    6000, esc);
    ScopedSimdMode guard(ans::SimdMode::kScalar);
    const ans::PackedSet set(fx.tables);
    ans::PackedDecoder dec(fx.enc.states, fx.enc.stream.data(), fx.enc.stream.size(), set);
    ans::InterleavedDecoder ref(fx.enc.states, fx.enc.stream.data(), fx.enc.stream.size());
    for (std::size_t i = 0; i < fx.ops.size(); ++i) {
      const int table = fx.ops[i].table;
      ASSERT_EQ(dec.get(static_cast<std::uint32_t>(table)),
                ref.get(fx.tables[static_cast<std::size_t>(table)]))
          << "op " << i;
    }
    dec.expect_exhausted();
    ref.expect_exhausted();
  }
}

TEST(AnsSimd, SimdMatchesScalarSymbolForSymbol) {
  if (!ans::simd_available()) GTEST_SKIP() << "no AVX2 kernel on this host";
  // Escape-light, escape-heavy, and tail lengths that leave partial groups.
  for (const int n_ops : {0, 1, 7, 8, 9, 4096, 6001}) {
    for (const double esc : {0.0, 0.5}) {
      const SimdFixtureStreams fx =
          make_simd_fixture(113 + static_cast<std::uint64_t>(n_ops), n_ops, esc);
      EXPECT_EQ(decode_all_packed(fx, ans::SimdMode::kSimd),
                decode_all_packed(fx, ans::SimdMode::kScalar))
          << "n_ops=" << n_ops << " esc=" << esc;
    }
  }
}

TEST(AnsSimd, LadderBitIdenticalAcrossModes) {
  if (!ans::simd_available()) GTEST_SKIP() << "no AVX2 kernel on this host";
  // End to end: every rung's parsed levels and decoded raster are
  // bit-identical between forced-scalar and forced-SIMD decodes.
  const Raster img = synth_raster(109, ImageClass::kPhoto, 93, 61);
  for (const int q : ladder_qualities()) {
    const Encoded enc = jpeg_encode(img, q, EntropyBackend::kRans);
    detail::DecodedLossy scalar_levels, simd_levels;
    Raster scalar_px(1, 1), simd_px(1, 1);
    {
      ScopedSimdMode guard(ans::SimdMode::kScalar);
      scalar_levels = detail::rans_parse_payload(enc.payload.data(), enc.payload.size());
      scalar_px = lossy_decode(enc.payload);
    }
    {
      ScopedSimdMode guard(ans::SimdMode::kSimd);
      simd_levels = detail::rans_parse_payload(enc.payload.data(), enc.payload.size());
      simd_px = lossy_decode(enc.payload);
    }
    EXPECT_EQ(scalar_levels.luma, simd_levels.luma) << "q" << q;
    EXPECT_EQ(scalar_levels.cb, simd_levels.cb) << "q" << q;
    EXPECT_EQ(scalar_levels.cr, simd_levels.cr) << "q" << q;
    EXPECT_TRUE(scalar_px.pixels() == simd_px.pixels()) << "q" << q;
    EXPECT_TRUE(scalar_px.pixels() == enc.decoded.pixels()) << "q" << q;
  }
}

TEST(AnsSimd, TruncationRejectedInBothModes) {
  // Accept/reject of any blob is mode-independent: a deferred SIMD flush
  // may surface truncation later than scalar, but never lets
  // expect_exhausted() pass on a short stream.
  const SimdFixtureStreams fx = make_simd_fixture(127, 3000, 0.2);
  const std::vector<ans::SimdMode> modes =
      ans::simd_available()
          ? std::vector<ans::SimdMode>{ans::SimdMode::kScalar, ans::SimdMode::kSimd}
          : std::vector<ans::SimdMode>{ans::SimdMode::kScalar};
  for (std::size_t cut = 0; cut < fx.enc.stream.size();
       cut += std::max<std::size_t>(1, fx.enc.stream.size() / 61)) {
    for (const ans::SimdMode mode : modes) {
      ScopedSimdMode guard(mode);
      auto decode_truncated = [&] {
        const ans::PackedSet set(fx.tables);
        ans::PackedDecoder dec(fx.enc.states, fx.enc.stream.data(), cut, set);
        for (const ans::SymbolRef& op : fx.ops) (void)dec.get(op.table);
        dec.expect_exhausted();
      };
      EXPECT_THROW(decode_truncated(), Error) << "cut=" << cut;
    }
  }
}

TEST(AnsEncode, ReciprocalEncoderMatchesReferenceByteForByte) {
  // The division-free hot path must emit the exact bytes and final states
  // of the pinned division/modulo encoder.
  for (const std::uint64_t seed : {131ull, 137ull, 139ull}) {
    const SimdFixtureStreams fx = make_simd_fixture(seed, 5000, 0.25);
    const ans::EncodedStreams ref = ans::encode_interleaved_reference(fx.ops, fx.tables);
    EXPECT_TRUE(fx.enc.stream == ref.stream);
    EXPECT_EQ(fx.enc.states, ref.states);
  }
}

TEST(AnsTable, DeserializePackedSetMatchesDeserializeTable) {
  // The decode-only parser must accept exactly what deserialize_table
  // accepts and produce the same packed slots — and reject exactly what it
  // rejects, byte mutation by byte mutation.
  Rng rng(149);
  std::vector<ans::FreqTable> tables;
  std::vector<std::uint8_t> bytes;
  for (int t = 0; t < 4; ++t) {
    const std::vector<std::uint64_t> counts = skewed_counts(rng, 256, 0.96);
    tables.push_back(ans::build_table(counts.data(), 256));
    ans::serialize_table(tables.back(), bytes);
  }
  {
    ans::ByteReader in(bytes.data(), bytes.size());
    const ans::PackedSet direct =
        ans::deserialize_packed_set(in, static_cast<int>(tables.size()));
    EXPECT_EQ(in.remaining(), 0u);
    const ans::PackedSet via_tables(tables);
    EXPECT_TRUE(direct.slots == via_tables.slots);
    EXPECT_TRUE(direct.esc_start == via_tables.esc_start);
  }
  // Throw parity under single-byte corruption and truncation.
  for (std::size_t off = 0; off < bytes.size();
       off += std::max<std::size_t>(1, bytes.size() / 97)) {
    std::vector<std::uint8_t> bad = bytes;
    bad[off] = static_cast<std::uint8_t>(bad[off] ^ 0x2D);
    bool table_threw = false, packed_threw = false;
    std::vector<ans::FreqTable> reparsed;
    try {
      ans::ByteReader in(bad.data(), bad.size());
      for (std::size_t t = 0; t < tables.size(); ++t)
        reparsed.push_back(ans::deserialize_table(in));
    } catch (const Error&) {
      table_threw = true;
    }
    try {
      ans::ByteReader in(bad.data(), bad.size());
      const ans::PackedSet direct =
          ans::deserialize_packed_set(in, static_cast<int>(tables.size()));
      if (!table_threw) {
        const ans::PackedSet via_tables(reparsed);
        EXPECT_TRUE(direct.slots == via_tables.slots) << "off=" << off;
        EXPECT_TRUE(direct.esc_start == via_tables.esc_start) << "off=" << off;
      }
    } catch (const Error&) {
      packed_threw = true;
    }
    EXPECT_EQ(table_threw, packed_threw) << "off=" << off;
    EXPECT_THROW(
        [&] {
          ans::ByteReader in(bytes.data(), off);
          (void)ans::deserialize_packed_set(in, static_cast<int>(tables.size()));
        }(),
        Error)
        << "truncation at " << off;
  }
}

// ---------------------------------------------------------------------------
// Fault injection: payload determinism across transient faults
// ---------------------------------------------------------------------------

class ImagingAnsFaultTest : public ::testing::Test {
 protected:
  void SetUp() override { fault::reset(); }
  void TearDown() override { fault::reset(); }
};

TEST_F(ImagingAnsFaultTest, BlobIdenticalAfterTransientFault) {
  // A transient codec fault followed by a retry must yield the exact same
  // payload blob — the ladder's A/B comparisons depend on deterministic
  // bytes regardless of the fault schedule.
  const Raster img = synth_raster(101, ImageClass::kPhoto, 64, 64);
  const Codec& codec = codec_for(ImageFormat::kJpeg);
  const Codec::PreparedPtr prep = codec.prepare(img);
  const Encoded expected = codec.encode(img, 65, EntropyBackend::kRans);

  fault::configure("codec.jpeg.encode", {.probability = 1.0, .max_fires = 1});
  EXPECT_THROW((void)codec.encode_prepared(*prep, 65, EntropyBackend::kRans),
               fault::InjectedFault);
  const Encoded after = codec.encode_prepared(*prep, 65, EntropyBackend::kRans);
  EXPECT_EQ(after.payload, expected.payload);
  EXPECT_EQ(after.bytes, expected.bytes);
  EXPECT_EQ(after.header_bytes, expected.header_bytes);
  EXPECT_TRUE(after.decoded.pixels() == expected.decoded.pixels());
  // And it still parses back bit-exactly.
  EXPECT_TRUE(lossy_decode(after.payload).pixels() == expected.decoded.pixels());
}

// ---------------------------------------------------------------------------
// Identity plumbing: ladders and caches never mix backends
// ---------------------------------------------------------------------------

TEST(ImagingAnsIdentity, LadderFingerprintSeparatesBackends) {
  LadderOptions huff;
  LadderOptions rans = huff;
  rans.entropy_backend = EntropyBackend::kRans;
  EXPECT_NE(ladder_options_fingerprint(huff), ladder_options_fingerprint(rans));
}

TEST(ImagingAnsIdentity, ConfigFingerprintSeparatesBackends) {
  core::DeveloperConfig huff;
  core::DeveloperConfig rans = huff;
  rans.entropy_backend = EntropyBackend::kRans;
  EXPECT_NE(serving::config_fingerprint(huff), serving::config_fingerprint(rans));
}

TEST(ImagingAnsIdentity, PipelineLadderOptionsCarryBackend) {
  core::DeveloperConfig config;
  config.entropy_backend = EntropyBackend::kRans;
  const core::Aw4aPipeline pipeline(config);
  EXPECT_EQ(pipeline.ladder_options().entropy_backend, EntropyBackend::kRans);
}

TEST(ImagingAnsIdentity, MeasuredVariantBytesDifferByBackend) {
  Rng rng(103);
  const SourceImage asset = make_source_image(rng, ImageClass::kPhoto, 200'000);
  const ImageVariant huff =
      measure_variant(asset, ImageFormat::kJpeg, 1.0, 65,
                      obs::RequestContext::none(), EntropyBackend::kHuffman);
  const ImageVariant rans =
      measure_variant(asset, ImageFormat::kJpeg, 1.0, 65,
                      obs::RequestContext::none(), EntropyBackend::kRans);
  EXPECT_LT(rans.bytes, huff.bytes);
  // Lossless entropy coding: identical SSIM.
  EXPECT_DOUBLE_EQ(rans.ssim, huff.ssim);
}

}  // namespace
}  // namespace aw4a::imaging
