// Bit-identity of the factored encode path: for every codec and every rung
// of the full quality ladder, prepare() + encode_prepared() must produce
// EXACTLY what single-shot encode() produces — same wire bytes, same header,
// same decoded pixels. The encode-once ladder optimization is only sound
// because quality exclusively affects the post-DCT half of the pipeline;
// these tests pin that.
//
// The fault-injection section checks the other half of the contract: the
// factored entry points fire the same "codec.<fmt>.encode" fault points as
// the single-shot encoder, once per invocation, so retry and fault sweeps
// see a uniform surface.
#include <gtest/gtest.h>

#include <vector>

#include "imaging/codec.h"
#include "imaging/synth.h"
#include "util/fault.h"
#include "util/rng.h"

namespace aw4a::imaging {
namespace {

const std::vector<int> kFullLadder = {100, 92, 85, 75, 65, 55, 45, 35, 20, 10, 1};

Raster photo_raster() {
  Rng rng(99);
  return synth_image(rng, ImageClass::kPhoto, 120, 88);  // edge blocks on both axes
}

Raster alpha_raster() {
  Rng rng(7);
  Raster img = synth_image(rng, ImageClass::kLogo, 64, 48);
  // Synth logos may or may not carry alpha; force a gradient so the alpha
  // plane path (kept by WebP/PNG, composited by JPEG) is definitely hit.
  for (int y = 0; y < img.height(); ++y) {
    for (int x = 0; x < img.width(); ++x) {
      img.at(x, y).a = static_cast<std::uint8_t>(55 + (x * 3 + y * 2) % 200);
    }
  }
  return img;
}

void expect_identical(const Encoded& single, const Encoded& factored, ImageFormat format,
                      int quality) {
  ASSERT_EQ(single.bytes, factored.bytes)
      << to_string(format) << " q=" << quality << ": wire bytes diverged";
  ASSERT_EQ(single.header_bytes, factored.header_bytes)
      << to_string(format) << " q=" << quality;
  ASSERT_EQ(single.quality, factored.quality) << to_string(format) << " q=" << quality;
  ASSERT_EQ(single.format, factored.format) << to_string(format) << " q=" << quality;
  ASSERT_TRUE(single.decoded.pixels() == factored.decoded.pixels())
      << to_string(format) << " q=" << quality << ": decoded raster diverged";
}

class EncodeOnceTest : public ::testing::TestWithParam<ImageFormat> {
 protected:
  void SetUp() override { fault::reset(); }
  void TearDown() override { fault::reset(); }
};

TEST_P(EncodeOnceTest, PreparedRungsBitIdenticalToSingleShotAcrossLadder) {
  const ImageFormat format = GetParam();
  const Codec& codec = codec_for(format);
  const Raster img = photo_raster();
  const Codec::PreparedPtr prep = codec.prepare(img);
  ASSERT_NE(prep, nullptr);
  for (const int q : kFullLadder) {
    const Encoded single = codec.encode(img, q);
    const Encoded factored = codec.encode_prepared(*prep, q);
    expect_identical(single, factored, format, q);
  }
}

TEST_P(EncodeOnceTest, PreparedRungsBitIdenticalOnAlphaContent) {
  const ImageFormat format = GetParam();
  const Codec& codec = codec_for(format);
  const Raster img = alpha_raster();
  ASSERT_TRUE(img.has_alpha());
  const Codec::PreparedPtr prep = codec.prepare(img);
  for (const int q : kFullLadder) {
    expect_identical(codec.encode(img, q), codec.encode_prepared(*prep, q), format, q);
  }
}

TEST_P(EncodeOnceTest, RungOrderDoesNotMatter) {
  // Re-quantization from shared coefficients must be stateless: encoding the
  // ladder backwards, or the same rung twice, changes nothing.
  const ImageFormat format = GetParam();
  const Codec& codec = codec_for(format);
  const Raster img = photo_raster();
  const Codec::PreparedPtr prep = codec.prepare(img);
  const Encoded first = codec.encode_prepared(*prep, 75);
  for (auto it = kFullLadder.rbegin(); it != kFullLadder.rend(); ++it) {
    (void)codec.encode_prepared(*prep, *it);
  }
  const Encoded again = codec.encode_prepared(*prep, 75);
  expect_identical(first, again, format, 75);
}

INSTANTIATE_TEST_SUITE_P(AllFormats, EncodeOnceTest,
                         ::testing::Values(ImageFormat::kJpeg, ImageFormat::kWebp,
                                           ImageFormat::kPng),
                         [](const auto& info) { return to_string(info.param); });

// --- Fault-point parity between the single-shot and factored paths ---

class EncodeOnceFaultTest : public ::testing::Test {
 protected:
  void SetUp() override { fault::reset(); }
  void TearDown() override { fault::reset(); }
};

TEST_F(EncodeOnceFaultTest, PrepareFiresTheCodecFaultPoint) {
  fault::configure("codec.jpeg.encode", {.probability = 1.0});
  const Raster img = photo_raster();
  EXPECT_THROW((void)jpeg_prepare(img), fault::InjectedFault);
  fault::configure("codec.webp.encode", {.probability = 1.0});
  EXPECT_THROW((void)webp_prepare(img), fault::InjectedFault);
}

TEST_F(EncodeOnceFaultTest, EncodePreparedFiresTheCodecFaultPoint) {
  const Raster img = photo_raster();
  const Codec::PreparedPtr jpeg_prep = jpeg_prepare(img);
  const Codec::PreparedPtr webp_prep = webp_prepare(img);
  fault::configure("codec.jpeg.encode", {.probability = 1.0});
  EXPECT_THROW((void)jpeg_encode_prepared(*jpeg_prep, 75), fault::InjectedFault);
  fault::configure("codec.jpeg.encode", {});
  fault::configure("codec.webp.encode", {.probability = 1.0});
  EXPECT_THROW((void)webp_encode_prepared(*webp_prep, 75), fault::InjectedFault);
}

TEST_F(EncodeOnceFaultTest, RungsAfterTransientFaultStayBitIdentical) {
  // One injected fault on the first prepared encode; the retry-visible
  // contract is exercised at the variants layer, but even at this layer a
  // post-fault rung must be unaffected by the earlier failure.
  const Raster img = photo_raster();
  const Codec& codec = codec_for(ImageFormat::kJpeg);
  const Codec::PreparedPtr prep = codec.prepare(img);
  const Encoded expected = codec.encode(img, 65);

  fault::configure("codec.jpeg.encode", {.probability = 1.0, .max_fires = 1});
  EXPECT_THROW((void)codec.encode_prepared(*prep, 65), fault::InjectedFault);
  const Encoded after = codec.encode_prepared(*prep, 65);
  expect_identical(expected, after, ImageFormat::kJpeg, 65);
}

}  // namespace
}  // namespace aw4a::imaging
