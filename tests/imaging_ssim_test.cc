#include "imaging/ssim.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <utility>

#include "imaging/synth.h"
#include "util/rng.h"

namespace aw4a::imaging {
namespace {

TEST(Ssim, IdenticalImagesScoreOne) {
  Rng rng(1);
  const Raster img = synth_image(rng, ImageClass::kPhoto, 64, 64);
  EXPECT_DOUBLE_EQ(ssim(img, img), 1.0);
}

TEST(Ssim, Symmetric) {
  Rng rng(2);
  const Raster a = synth_image(rng, ImageClass::kPhoto, 64, 64);
  const Raster b = synth_image(rng, ImageClass::kPhoto, 64, 64);
  EXPECT_DOUBLE_EQ(ssim(a, b), ssim(b, a));
}

TEST(Ssim, BoundedAndPenalizesDifference) {
  Rng rng(3);
  const Raster a = synth_image(rng, ImageClass::kPhoto, 64, 64);
  const Raster b = synth_image(rng, ImageClass::kTextBanner, 64, 64);
  const double s = ssim(a, b);
  EXPECT_LT(s, 0.9);
  EXPECT_GE(s, -1.0);
  EXPECT_LE(s, 1.0);
}

TEST(Ssim, MonotoneInNoiseLevel) {
  Rng rng(4);
  const Raster img = synth_image(rng, ImageClass::kPhoto, 64, 64);
  auto noisy = [&](int amplitude) {
    Raster out = img;
    Rng noise_rng(99);
    for (auto& p : out.pixels()) {
      const int d = static_cast<int>(noise_rng.uniform_int(-amplitude, amplitude));
      p.r = static_cast<std::uint8_t>(std::clamp(int(p.r) + d, 0, 255));
      p.g = static_cast<std::uint8_t>(std::clamp(int(p.g) + d, 0, 255));
      p.b = static_cast<std::uint8_t>(std::clamp(int(p.b) + d, 0, 255));
    }
    return out;
  };
  const double s5 = ssim(img, noisy(5));
  const double s20 = ssim(img, noisy(20));
  const double s60 = ssim(img, noisy(60));
  EXPECT_GT(s5, s20);
  EXPECT_GT(s20, s60);
  EXPECT_GT(s5, 0.8);
}

TEST(Ssim, LuminanceShiftCostsLessThanStructureLoss) {
  Rng rng(5);
  const Raster img = synth_image(rng, ImageClass::kPhoto, 64, 64);
  Raster shifted = img;
  for (auto& p : shifted.pixels()) {
    p.r = static_cast<std::uint8_t>(std::min(255, p.r + 12));
    p.g = static_cast<std::uint8_t>(std::min(255, p.g + 12));
    p.b = static_cast<std::uint8_t>(std::min(255, p.b + 12));
  }
  Raster flat(64, 64, Pixel{128, 128, 128, 255});
  EXPECT_GT(ssim(img, shifted), ssim(img, flat));
}

TEST(Ssim, RejectsMismatchedSizes) {
  Raster a(10, 10);
  Raster b(11, 10);
  EXPECT_THROW((void)ssim(a, b), LogicError);
}

TEST(Ssim, HandlesImagesSmallerThanWindow) {
  Raster a(5, 5, Pixel{100, 100, 100, 255});
  Raster b = a;
  EXPECT_DOUBLE_EQ(ssim(a, b), 1.0);
  b.at(2, 2) = Pixel{0, 0, 0, 255};
  EXPECT_LT(ssim(a, b), 1.0);
}

TEST(Ssim, StrideApproximatesDense) {
  Rng rng(6);
  const Raster a = synth_image(rng, ImageClass::kPhoto, 96, 96);
  const Raster b = synth_image(rng, ImageClass::kPhoto, 96, 96);
  const double dense = ssim(a, b, {.window = 8, .stride = 1});
  const double strided = ssim(a, b, {.window = 8, .stride = 4});
  EXPECT_NEAR(dense, strided, 0.03);
}

class SsimWindowTest : public ::testing::TestWithParam<int> {};

TEST_P(SsimWindowTest, IdentityHoldsForAllWindows) {
  Rng rng(7);
  const Raster img = synth_image(rng, ImageClass::kScreenshot, 48, 48);
  EXPECT_DOUBLE_EQ(ssim(img, img, {.window = GetParam(), .stride = 2}), 1.0);
}

INSTANTIATE_TEST_SUITE_P(Windows, SsimWindowTest, ::testing::Values(4, 8, 11, 16));

// --- Equivalence of the integral-image implementation with the retained
// direct-summation reference (the pre-rewrite algorithm). ---

// Two correlated planes of the given size: a synthetic photo's luma and a
// perturbed copy, so variance/covariance terms are all exercised.
std::pair<PlaneF, PlaneF> correlated_planes(int width, int height, int seed = 11) {
  Rng rng(seed);
  const Raster img = synth_image(rng, ImageClass::kPhoto, width, height);
  PlaneF a = luma_plane(img);
  PlaneF b = a;
  Rng noise(seed + 1);
  for (float& v : b.v) {
    v = std::clamp(v + static_cast<float>(noise.uniform(-25.0, 25.0)), 0.0f, 255.0f);
  }
  return {std::move(a), std::move(b)};
}

class SsimStrideEquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(SsimStrideEquivalenceTest, MatchesReferenceImplementation) {
  const auto [a, b] = correlated_planes(96, 80);
  const SsimOptions opts{.window = 8, .stride = GetParam()};
  EXPECT_NEAR(ssim(a, b, opts), ssim_reference(a, b, opts), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Strides, SsimStrideEquivalenceTest, ::testing::Values(1, 3, 4, 8));

TEST(SsimEquivalence, OddPlaneSizes) {
  for (const auto [w, h] : {std::pair{37, 53}, std::pair{61, 19}, std::pair{101, 23}}) {
    const auto [a, b] = correlated_planes(w, h, 100 + w);
    for (const int stride : {1, 3, 4}) {
      const SsimOptions opts{.window = 8, .stride = stride};
      EXPECT_NEAR(ssim(a, b, opts), ssim_reference(a, b, opts), 1e-9)
          << w << "x" << h << " stride " << stride;
    }
  }
}

TEST(SsimEquivalence, WindowLargerThanPlaneClamps) {
  const auto [a, b] = correlated_planes(12, 9, 31);
  // window 16 > both dims: both implementations must clamp to min(w, h).
  const SsimOptions opts{.window = 16, .stride = 2};
  EXPECT_NEAR(ssim(a, b, opts), ssim_reference(a, b, opts), 1e-9);
}

TEST(SsimEquivalence, ConstantAndFlatPlanes) {
  const PlaneF flat_a(40, 40, 128.0f);
  const PlaneF flat_b(40, 40, 64.0f);
  // Zero-variance windows: the stabilized formula must agree exactly.
  EXPECT_NEAR(ssim(flat_a, flat_b), ssim_reference(flat_a, flat_b), 1e-9);
  EXPECT_DOUBLE_EQ(ssim(flat_a, flat_a), 1.0);

  // One plane flat, one textured: covariance is ~0, variance one-sided.
  const auto [textured, unused] = correlated_planes(40, 40, 77);
  (void)unused;
  for (const int stride : {1, 4}) {
    const SsimOptions opts{.window = 8, .stride = stride};
    EXPECT_NEAR(ssim(flat_a, textured, opts), ssim_reference(flat_a, textured, opts), 1e-9);
  }
}

TEST(SsimEquivalence, LargePlaneDense) {
  const auto [a, b] = correlated_planes(144, 128, 5);
  const SsimOptions dense{.window = 8, .stride = 1};
  EXPECT_NEAR(ssim(a, b, dense), ssim_reference(a, b, dense), 1e-9);
}

// --- Integral-vs-direct dispatch (the strided-SSIM regression fix) ---

TEST(SsimDispatch, BenchPlaneCrossesOverBetweenStride4AndStride1) {
  // The calibration case: on the 448x336 bench plane with the 8x8 window,
  // stride 4 visits 1/16th of the window positions and the direct path wins
  // (measured 0.78ms vs 1.06ms); dense stride 1 amortizes the tables.
  EXPECT_FALSE(ssim_uses_integral(448, 336, SsimOptions{.window = 8, .stride = 4}));
  EXPECT_TRUE(ssim_uses_integral(448, 336, SsimOptions{.window = 8, .stride = 1}));
  EXPECT_TRUE(ssim_uses_integral(448, 336, SsimOptions{.window = 8, .stride = 2}));
}

TEST(SsimDispatch, TinyPlanesWhereEveryPixelIsWindowedUseIntegral) {
  // Stride 1 on any plane touches every pixel win^2 times directly; tables
  // always win there regardless of plane size.
  EXPECT_TRUE(ssim_uses_integral(16, 16, SsimOptions{.window = 8, .stride = 1}));
  EXPECT_TRUE(ssim_uses_integral(64, 64, SsimOptions{.window = 8, .stride = 1}));
}

TEST(SsimDispatch, VerySparseGridsUseDirect) {
  EXPECT_FALSE(ssim_uses_integral(448, 336, SsimOptions{.window = 8, .stride = 16}));
  EXPECT_FALSE(ssim_uses_integral(1024, 768, SsimOptions{.window = 8, .stride = 32}));
}

TEST(SsimDispatch, DirectPathIsBitIdenticalToReference) {
  // The direct path may run four windows per AVX2 register; every lane must
  // execute the reference's chains in the reference's order, so equality is
  // exact — EXPECT_EQ on the doubles, not a tolerance. Sizes exercise the
  // vector groups, the scalar remainder (width not a multiple of 4 windows),
  // and the clamped tail window on both axes.
  for (const auto& [w, h] : {std::pair{160, 120}, {163, 121}, {57, 43}, {448, 336}}) {
    const auto [a, b] = correlated_planes(w, h, 31);
    for (const int stride : {3, 4, 7, 16}) {
      const SsimOptions opts{.window = 8, .stride = stride};
      if (ssim_uses_integral(w, h, opts)) continue;  // direct path only
      EXPECT_EQ(ssim(a, b, opts), ssim_reference(a, b, opts))
          << w << "x" << h << " stride " << stride;
    }
  }
}

TEST(SsimDispatch, BothSidesOfTheCrossoverAgreeNumerically) {
  // The dispatch must be invisible except as time: pin agreement right at
  // the strides where the path flips on a realistic plane.
  const auto [a, b] = correlated_planes(160, 120, 9);
  for (const int stride : {1, 2, 4, 8}) {
    const SsimOptions opts{.window = 8, .stride = stride};
    EXPECT_NEAR(ssim(a, b, opts), ssim_reference(a, b, opts), 1e-9) << "stride " << stride;
  }
}

}  // namespace
}  // namespace aw4a::imaging
