// Tests for the lite-video extension (paper §10 future work).
#include <gtest/gtest.h>

#include "core/hbs.h"
#include "core/media_reduction.h"
#include "dataset/corpus.h"
#include "util/rng.h"
#include "web/media.h"

namespace aw4a {
namespace {

web::MediaAsset asset(std::uint64_t seed = 1, Bytes wire = 300 * kKB) {
  Rng rng(seed);
  return web::make_media_asset(rng, wire);
}

TEST(MediaAsset, LadderShapeAndAnchoring) {
  const auto a = asset();
  ASSERT_EQ(a.ladder.size(), 5u);
  EXPECT_EQ(a.shipped().bytes, 300 * kKB);
  EXPECT_DOUBLE_EQ(a.shipped().quality, 1.0);
  EXPECT_EQ(a.shipped().height_px, 1080);
  for (std::size_t i = 1; i < a.ladder.size(); ++i) {
    EXPECT_LT(a.ladder[i].bytes, a.ladder[i - 1].bytes);
    EXPECT_LT(a.ladder[i].quality, a.ladder[i - 1].quality);
    EXPECT_LT(a.ladder[i].height_px, a.ladder[i - 1].height_px);
    EXPECT_GT(a.ladder[i].quality, 0.0);
  }
}

TEST(MediaAsset, RateDistortionFormIsConcave) {
  // Diminishing returns: marginal quality per kbps falls as bitrate grows.
  const auto a = asset(2);
  auto slope = [&](std::size_t hi, std::size_t lo) {
    return (a.ladder[hi].quality - a.ladder[lo].quality) /
           static_cast<double>(a.ladder[hi].bitrate_kbps - a.ladder[lo].bitrate_kbps);
  };
  EXPECT_LT(slope(0, 1), slope(1, 2));
  EXPECT_LT(slope(1, 2), slope(3, 4));
}

TEST(MediaAsset, CheapestAtLeastRespectsFloor) {
  const auto a = asset(3);
  const auto& r = a.cheapest_at_least(0.8);
  EXPECT_GE(r.quality, 0.8);
  // Everything cheaper is below the floor.
  for (const auto& other : a.ladder) {
    if (other.bytes < r.bytes) {
      EXPECT_LT(other.quality, 0.8);
    }
  }
  // An impossible floor returns the shipped rendition.
  EXPECT_EQ(a.cheapest_at_least(2.0).bytes, a.shipped().bytes);
}

web::WebPage media_rich_page(std::uint64_t seed) {
  dataset::CorpusGenerator gen(dataset::CorpusOptions{.seed = seed, .rich = true});
  Rng rng(seed);
  dataset::CompositionProfile p = gen.global_profile();
  p.of(web::ObjectType::kMedia) = 0.25;  // media-heavy page
  p.of(web::ObjectType::kImage) = 0.30;
  return gen.make_page(rng, from_mb(2.0), p);
}

TEST(MediaReduction, MeetsTargetAndRecordsRenditions) {
  const web::WebPage page = media_rich_page(10);
  ASSERT_GT(page.count(web::ObjectType::kMedia), 0u);
  web::ServedPage served = web::serve_original(page);
  const Bytes media_bytes = page.transfer_size(web::ObjectType::kMedia);
  const Bytes target = page.transfer_size() - media_bytes * 3 / 10;
  core::MediaReductionOptions options;
  options.enabled = true;
  options.quality_floor = 0.3;
  const auto outcome = core::apply_media_reduction(served, target, options);
  EXPECT_TRUE(outcome.met_target);
  EXPECT_GT(outcome.clips_reduced, 0);
  for (const auto& [id, rendition] : served.media) {
    EXPECT_GE(rendition.quality, 0.3);
  }
}

TEST(MediaReduction, FloorBindsOnImpossibleTargets) {
  const web::WebPage page = media_rich_page(11);
  web::ServedPage served = web::serve_original(page);
  core::MediaReductionOptions options;
  options.enabled = true;
  options.quality_floor = 0.9;
  const auto outcome = core::apply_media_reduction(served, 1, options);
  EXPECT_FALSE(outcome.met_target);
  for (const auto& [id, rendition] : served.media) {
    EXPECT_GE(rendition.quality, 0.9 - 1e-12);
  }
}

TEST(MediaReduction, QmsReflectsChoices) {
  const web::WebPage page = media_rich_page(12);
  web::ServedPage served = web::serve_original(page);
  EXPECT_DOUBLE_EQ(core::compute_qms(served), 1.0);
  core::MediaReductionOptions options;
  options.enabled = true;
  options.quality_floor = 0.4;
  core::apply_media_reduction(served, 1, options);
  const double qms = core::compute_qms(served);
  EXPECT_LT(qms, 1.0);
  EXPECT_GE(qms, 0.4 - 1e-9);
}

TEST(MediaReduction, HbsIntegrationUsesLadderBeforeImages) {
  const web::WebPage page = media_rich_page(13);
  core::LadderCache ladders;
  core::HbsOptions options;
  options.measure_qfs = false;
  options.media.enabled = true;
  options.media.quality_floor = 0.5;
  const Bytes target = page.transfer_size() * 80 / 100;
  const auto result =
      core::hbs_transcode(page, web::serve_original(page), target, ladders, options);
  EXPECT_TRUE(result.met_target);
  EXPECT_FALSE(result.served.media.empty());
}

TEST(MediaReduction, DisabledByDefault) {
  const web::WebPage page = media_rich_page(14);
  core::LadderCache ladders;
  core::HbsOptions options;
  options.measure_qfs = false;
  const auto result = core::hbs_transcode(page, web::serve_original(page),
                                          page.transfer_size() * 80 / 100, ladders, options);
  EXPECT_TRUE(result.served.media.empty());
}

}  // namespace
}  // namespace aw4a
