#include "imaging/codec.h"

#include <gtest/gtest.h>

#include "imaging/ssim.h"
#include "imaging/synth.h"
#include "util/rng.h"

namespace aw4a::imaging {
namespace {

Raster test_photo(std::uint64_t seed = 1, int w = 64, int h = 64) {
  Rng rng(seed);
  return synth_image(rng, ImageClass::kPhoto, w, h);
}

TEST(JpegCodec, QualityControlsBytes) {
  const Raster img = test_photo();
  const Encoded q90 = jpeg_encode(img, 90);
  const Encoded q50 = jpeg_encode(img, 50);
  const Encoded q10 = jpeg_encode(img, 10);
  EXPECT_GT(q90.bytes, q50.bytes);
  EXPECT_GT(q50.bytes, q10.bytes);
}

TEST(JpegCodec, QualityControlsFidelity) {
  const Raster img = test_photo();
  const double s90 = ssim(img, jpeg_encode(img, 90).decoded);
  const double s30 = ssim(img, jpeg_encode(img, 30).decoded);
  const double s5 = ssim(img, jpeg_encode(img, 5).decoded);
  EXPECT_GT(s90, s30);
  EXPECT_GT(s30, s5);
  EXPECT_GT(s90, 0.9);
}

TEST(JpegCodec, DecodedDimensionsMatch) {
  Rng rng(2);
  const Raster img = synth_image(rng, ImageClass::kScreenshot, 41, 29);  // non-multiple of 8
  const Encoded enc = jpeg_encode(img, 80);
  EXPECT_EQ(enc.decoded.width(), 41);
  EXPECT_EQ(enc.decoded.height(), 29);
}

TEST(JpegCodec, DropsAlpha) {
  Rng rng(3);
  Raster img = synth_image(rng, ImageClass::kLogo, 32, 32);
  img.at(0, 0).a = 0;  // ensure transparency
  const Encoded enc = jpeg_encode(img, 80);
  EXPECT_FALSE(enc.decoded.has_alpha());
}

TEST(PngCodec, LosslessRoundTrip) {
  Rng rng(4);
  const Raster img = synth_image(rng, ImageClass::kLogo, 48, 48);
  const Encoded enc = png_encode(img);
  EXPECT_EQ(mean_abs_diff(img, enc.decoded), 0.0);
  EXPECT_DOUBLE_EQ(ssim(img, enc.decoded), 1.0);
}

TEST(PngCodec, FlatArtSmallerThanJpegAtHighQuality) {
  Rng rng(5);
  Raster img(64, 64, Pixel{200, 30, 30, 255});
  img.fill_rect(10, 10, 20, 20, Pixel{30, 30, 200, 255});
  EXPECT_LT(png_encode(img).bytes, jpeg_encode(img, 95).bytes);
}

TEST(PngCodec, PhotoLargerThanJpeg) {
  const Raster img = test_photo(6);
  EXPECT_GT(png_encode(img).bytes, jpeg_encode(img, 85).bytes);
}

TEST(WebpCodec, BeatsJpegAtSameQuality) {
  const Raster img = test_photo(7, 96, 96);
  const Encoded jpeg = jpeg_encode(img, 80);
  const Encoded webp = webp_encode(img, 80);
  EXPECT_LT(webp.bytes, jpeg.bytes);
  // And not at a big fidelity cost.
  EXPECT_GT(ssim(img, webp.decoded), ssim(img, jpeg.decoded) - 0.05);
}

TEST(WebpCodec, PreservesAlpha) {
  Rng rng(8);
  Raster img = synth_image(rng, ImageClass::kLogo, 40, 40);
  img.at(3, 3).a = 0;
  const Encoded enc = webp_encode(img, 80);
  EXPECT_TRUE(enc.decoded.has_alpha());
}

TEST(WebpCodec, LosslessBeatsPng) {
  Rng rng(9);
  const Raster img = synth_image(rng, ImageClass::kLogo, 48, 48);
  EXPECT_LT(webp_lossless_encode(img).bytes, png_encode(img).bytes);
  EXPECT_EQ(mean_abs_diff(img, webp_lossless_encode(img).decoded), 0.0);
}

TEST(CodecRegistry, FormatsAndAlphaSupport) {
  EXPECT_EQ(codec_for(ImageFormat::kJpeg).format(), ImageFormat::kJpeg);
  EXPECT_FALSE(codec_for(ImageFormat::kJpeg).supports_alpha());
  EXPECT_TRUE(codec_for(ImageFormat::kPng).supports_alpha());
  EXPECT_TRUE(codec_for(ImageFormat::kWebp).supports_alpha());
}

TEST(NaturalFormat, PhotosAreJpegFlatArtIsPng) {
  EXPECT_EQ(natural_format(test_photo(10)), ImageFormat::kJpeg);
  Rng rng(11);
  Raster logo = synth_image(rng, ImageClass::kLogo, 48, 48);
  EXPECT_EQ(natural_format(logo), ImageFormat::kPng);
  // Anything transparent must be PNG.
  Raster transparent = test_photo(12);
  transparent.at(0, 0).a = 10;
  EXPECT_EQ(natural_format(transparent), ImageFormat::kPng);
}

// Byte cost scales with content complexity: noisy photos cost more than
// gradients at the same size/quality for every lossy codec.
class LossyCostTest : public ::testing::TestWithParam<ImageFormat> {};

TEST_P(LossyCostTest, ComplexityRaisesCost) {
  if (GetParam() == ImageFormat::kPng) GTEST_SKIP();
  Rng rng(13);
  const Raster photo = synth_image(rng, ImageClass::kPhoto, 64, 64);
  const Raster gradient = synth_image(rng, ImageClass::kGradient, 64, 64);
  const auto& codec = codec_for(GetParam());
  EXPECT_GT(codec.encode(photo, 75).bytes, codec.encode(gradient, 75).bytes);
}

INSTANTIATE_TEST_SUITE_P(Formats, LossyCostTest,
                         ::testing::Values(ImageFormat::kJpeg, ImageFormat::kWebp),
                         [](const auto& info) { return to_string(info.param); });

}  // namespace
}  // namespace aw4a::imaging
