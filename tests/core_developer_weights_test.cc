// Tests for the §5.4 developer API: per-object weights enter the objective
// (Eq. 3) and steer RBR away from prioritized objects.
#include <gtest/gtest.h>

#include "core/quality.h"
#include "core/rbr.h"
#include "dataset/corpus.h"
#include "js/muzeel.h"
#include "util/rng.h"

namespace aw4a::core {
namespace {

web::WebPage rich_page(std::uint64_t seed = 130) {
  dataset::CorpusGenerator gen(dataset::CorpusOptions{.seed = seed, .rich = true});
  Rng rng(seed);
  return gen.make_page(rng, from_mb(1.6), gen.global_profile());
}

TEST(DeveloperWeights, QssWeighsPrioritizedImagesHarder) {
  web::WebPage page = rich_page();
  const auto images = rich_images(page);
  ASSERT_GE(images.size(), 2u);
  // Degrade exactly one image to SSIM 0.5 and compare QSS with and without
  // a 4x priority on that image.
  const std::uint64_t victim = images[0]->id;
  web::ServedPage served = web::serve_original(page);
  imaging::ImageVariant v;
  v.ssim = 0.5;
  v.bytes = 100;
  served.images[victim] = web::ServedImage{.variant = v, .dropped = false};
  const double neutral = compute_qss(served);

  for (auto& o : page.objects) {
    if (o.id == victim) o.developer_weight = 4.0;
  }
  const double prioritized = compute_qss(served);
  // The same damage hurts more when the developer marked the image important.
  EXPECT_LT(prioritized, neutral);
}

TEST(DeveloperWeights, RbrReducesProtectedImagesLast) {
  web::WebPage page = rich_page(131);
  const auto images = rich_images(page);
  ASSERT_GE(images.size(), 3u);
  // Protect the first-ranked image heavily; it must drop in the ranking.
  LadderCache ladders;
  const auto before = reducibility_ranking(page, ladders);
  const std::uint64_t top = before.front().first;
  for (auto& o : page.objects) {
    if (o.id == top) o.developer_weight = 100.0;
  }
  const auto after = reducibility_ranking(page, ladders);
  EXPECT_NE(after.front().first, top);
  EXPECT_EQ(after.back().first, top);  // hero image now reduced last
}

TEST(DeveloperWeights, NeutralWeightChangesNothing) {
  const web::WebPage page = rich_page(132);
  LadderCache ladders;
  const auto a = reducibility_ranking(page, ladders);
  const auto b = reducibility_ranking(page, ladders);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].first, b[i].first);
    EXPECT_DOUBLE_EQ(a[i].second, b[i].second);
  }
}

TEST(DeveloperWeights, NonPositiveWeightRejected) {
  web::WebPage page = rich_page(133);
  for (auto& o : page.objects) o.developer_weight = 0.0;
  LadderCache ladders;
  EXPECT_THROW((void)reducibility_ranking(page, ladders), LogicError);
}

TEST(JsCoverage, ReportSumsAndClassifies) {
  Rng rng(7);
  js::ScriptSynthOptions options;
  options.target_bytes = 80 * kKB;
  options.dead_fraction = 0.5;
  options.dynamic_call_prob = 0.15;
  const js::Script script = js::synth_script(rng, options);
  const js::CoverageReport report = js::coverage(script);
  EXPECT_EQ(report.total_functions, script.functions.size());
  EXPECT_EQ(report.live_functions + report.dead_functions, report.total_functions);
  EXPECT_LE(report.risky_functions, report.dead_functions);
  EXPECT_EQ(report.total_bytes, script.total_bytes());
  EXPECT_LE(report.risky_bytes, report.dead_bytes);
  EXPECT_GT(report.dead_fraction(), 0.0);
  EXPECT_LT(report.dead_fraction(), 1.0);
  // Coverage agrees with Muzeel's actual removal.
  const auto muzeel = js::muzeel_eliminate(script);
  EXPECT_EQ(report.dead_bytes, muzeel.removed_bytes);
  EXPECT_EQ(report.risky_functions, muzeel.broken.size());
}

TEST(JsCoverage, FullyLiveScriptHasNoDeadBytes) {
  js::Script script;
  script.id = 1;
  js::JsFunction f;
  f.id = 1;
  f.bytes = 100;
  script.functions.push_back(f);
  script.init_functions = {1};
  const auto report = js::coverage(script);
  EXPECT_EQ(report.dead_functions, 0u);
  EXPECT_DOUBLE_EQ(report.dead_fraction(), 0.0);
}

}  // namespace
}  // namespace aw4a::core
