#include "net/http.h"

#include <gtest/gtest.h>

namespace aw4a::net {
namespace {

TEST(Http, RequestRoundTrip) {
  HttpRequest request;
  request.path = "/index.html";
  request.headers.push_back({"Host", "example.com"});
  request.headers.push_back({"Save-Data", "on"});
  const std::string wire = serialize(request);
  EXPECT_EQ(wire.substr(0, 31), "GET /index.html HTTP/1.1\r\nHost:");
  const auto parsed = parse_request(wire);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->method, "GET");
  EXPECT_EQ(parsed->path, "/index.html");
  EXPECT_TRUE(parsed->save_data());
}

TEST(Http, HeaderLookupIsCaseInsensitive) {
  HttpRequest request;
  request.headers.push_back({"sAvE-dAtA", "On"});
  EXPECT_TRUE(request.save_data());
  EXPECT_NE(request.header("SAVE-DATA"), nullptr);
  EXPECT_EQ(request.header("missing"), nullptr);
}

TEST(Http, SaveDataRequiresOn) {
  HttpRequest request;
  request.headers.push_back({"Save-Data", "off"});
  EXPECT_FALSE(request.save_data());
  request.headers[0].value = " on ";
  EXPECT_TRUE(request.save_data());  // trimmed
}

TEST(Http, CountryHintNormalizesToUppercaseIso2) {
  HttpRequest request;
  EXPECT_FALSE(request.country_hint().has_value());
  request.headers.push_back({"X-Geo-Country", "PK"});
  ASSERT_TRUE(request.country_hint().has_value());
  EXPECT_EQ(*request.country_hint(), "PK");
  request.headers[0].value = "pk";
  EXPECT_EQ(*request.country_hint(), "PK");
  request.headers[0].value = " et ";  // trimmed, then normalized
  EXPECT_EQ(*request.country_hint(), "ET");
}

TEST(Http, CountryHintRejectsNonIso2Junk) {
  HttpRequest request;
  request.headers.push_back({"X-Geo-Country", ""});
  for (const char* junk : {"", "Pakistan", "P", "PAK", "P1", "1K", "--", "p k", "\xC3\x89T"}) {
    request.headers[0].value = junk;
    EXPECT_FALSE(request.country_hint().has_value()) << "accepted junk hint: " << junk;
  }
}

TEST(Http, HostIsLowercasedAndPortStripped) {
  HttpRequest request;
  EXPECT_FALSE(request.host().has_value());
  request.headers.push_back({"Host", "News.Example.COM:8080"});
  ASSERT_TRUE(request.host().has_value());
  EXPECT_EQ(*request.host(), "news.example.com");
  request.headers[0].value = "plain.example";
  EXPECT_EQ(*request.host(), "plain.example");
  request.headers[0].value = "  ";
  EXPECT_FALSE(request.host().has_value());
}

TEST(Http, SavingsHeaderValidation) {
  HttpRequest request;
  request.headers.push_back({"AW4A-Savings", "65"});
  ASSERT_TRUE(request.preferred_savings_pct().has_value());
  EXPECT_DOUBLE_EQ(*request.preferred_savings_pct(), 65.0);
  request.headers[0].value = "abc";
  EXPECT_FALSE(request.preferred_savings_pct().has_value());
  request.headers[0].value = "120";
  EXPECT_FALSE(request.preferred_savings_pct().has_value());
  request.headers[0].value = "-3";
  EXPECT_FALSE(request.preferred_savings_pct().has_value());
}

TEST(Http, MalformedRequestsRejected) {
  EXPECT_FALSE(parse_request("").has_value());
  EXPECT_FALSE(parse_request("GET /\r\n\r\n").has_value());               // no version
  EXPECT_FALSE(parse_request("GET / HTTP/1.1 junk\r\n\r\n").has_value()); // trailing junk
  EXPECT_FALSE(parse_request("GET / FTP/1.0\r\n\r\n").has_value());       // bad scheme
  EXPECT_FALSE(parse_request("GET / HTTP/1.1\r\nNoColonHere\r\n\r\n").has_value());
  EXPECT_FALSE(parse_request("GET / HTTP/1.1\r\nBad Name: x\r\n\r\n").has_value());
}

TEST(Http, MissingTerminatorRejected) {
  // A head must end with its blank-line terminator; EOF mid-head means the
  // message was truncated on the wire.
  EXPECT_FALSE(parse_request("GET / HTTP/1.1\r\n").has_value());
  EXPECT_FALSE(parse_request("GET / HTTP/1.1\r\nHost: example.com\r\n").has_value());
  EXPECT_FALSE(parse_response("HTTP/1.1 200 OK\r\nAW4A-Tier: 1\r\n").has_value());
  EXPECT_TRUE(parse_request("GET / HTTP/1.1\r\n\r\n").has_value());
  EXPECT_TRUE(parse_response("HTTP/1.1 200 OK\r\n\r\n").has_value());
}

TEST(Http, OversizedHeaderCountRejected) {
  std::string wire = "GET / HTTP/1.1\r\n";
  for (int i = 0; i < 100; ++i) wire += "H" + std::to_string(i) + ": v\r\n";
  EXPECT_TRUE(parse_request(wire + "\r\n").has_value());  // at the cap: fine
  wire += "H100: one too many\r\n";
  EXPECT_FALSE(parse_request(wire + "\r\n").has_value());
}

TEST(Http, NonFiniteSavingsRejected) {
  HttpRequest request;
  request.headers.push_back({"AW4A-Savings", "nan"});
  EXPECT_FALSE(request.preferred_savings_pct().has_value());
  request.headers[0].value = "inf";
  EXPECT_FALSE(request.preferred_savings_pct().has_value());
  request.headers[0].value = "-inf";
  EXPECT_FALSE(request.preferred_savings_pct().has_value());
  request.headers[0].value = "1e999";  // overflows double
  EXPECT_FALSE(request.preferred_savings_pct().has_value());
}

TEST(Http, MalformedSavingsOverTheWire) {
  const auto parsed = parse_request(
      "GET / HTTP/1.1\r\nSave-Data: on\r\nAW4A-Savings: 5O\r\n\r\n");  // typo'd "50"
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->save_data());
  EXPECT_FALSE(parsed->preferred_savings_pct().has_value());
}

TEST(Http, ResponseRoundTripWithContentLength) {
  HttpResponse response;
  response.status = 200;
  response.content_length = 123456;
  response.headers.push_back({"AW4A-Tier", "2"});
  const std::string wire = serialize(response);
  EXPECT_NE(wire.find("HTTP/1.1 200 OK\r\n"), std::string::npos);
  EXPECT_NE(wire.find("Content-Length: 123456\r\n"), std::string::npos);
  const auto parsed = parse_response(wire);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->status, 200);
  EXPECT_EQ(parsed->content_length, 123456u);
  ASSERT_NE(parsed->header("aw4a-tier"), nullptr);
  EXPECT_EQ(*parsed->header("aw4a-tier"), "2");
}

TEST(Http, ResponseReasonPreserved) {
  const auto parsed = parse_response("HTTP/1.1 405 Method Not Allowed\r\nAllow: GET\r\n\r\n");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->status, 405);
  EXPECT_EQ(parsed->reason, "Method Not Allowed");
}

TEST(Http, ResponseBodyRoundTrip) {
  HttpResponse response;
  response.headers.push_back({"Content-Type", "application/json"});
  response.body = "{\"requests\":{\"total\":12}}";
  const std::string wire = serialize(response);
  EXPECT_NE(wire.find("Content-Length: 25\r\n"), std::string::npos);
  EXPECT_EQ(wire.substr(wire.size() - response.body.size()), response.body);
  const auto parsed = parse_response(wire);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->body, response.body);
  EXPECT_EQ(parsed->content_length, 25u);
}

TEST(Http, EmptyBodyLeavesSimulatedLength) {
  HttpResponse response;
  response.content_length = 777;  // simulated page bytes, no materialized body
  const std::string wire = serialize(response);
  EXPECT_NE(wire.find("Content-Length: 777\r\n"), std::string::npos);
  const auto parsed = parse_response(wire);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->body.empty());
}

TEST(Http, ExplicitContentLengthHeaderWins) {
  HttpResponse response;
  response.content_length = 999;  // would be auto-emitted...
  response.headers.push_back({"Content-Length", "42"});  // ...but explicit wins
  const std::string wire = serialize(response);
  EXPECT_NE(wire.find("Content-Length: 42"), std::string::npos);
  EXPECT_EQ(wire.find("999"), std::string::npos);
}

}  // namespace
}  // namespace aw4a::net
