// Tests for the report/printing helpers the benches rely on: the output
// format is part of the harness contract (machine-readable series + visual).
#include "analysis/report.h"

#include <gtest/gtest.h>

#include <sstream>

namespace aw4a::analysis {
namespace {

TEST(Report, HeaderStructure) {
  std::ostringstream os;
  print_header(os, "Fig. X — demo", "the paper says Y", "our setup Z");
  const std::string out = os.str();
  EXPECT_NE(out.find("==== Fig. X — demo ===="), std::string::npos);
  EXPECT_NE(out.find("paper:  the paper says Y"), std::string::npos);
  EXPECT_NE(out.find("setup:  our setup Z"), std::string::npos);
}

TEST(Report, CdfEmitsRequestedPointCount) {
  std::ostringstream os;
  std::vector<double> values;
  for (int i = 1; i <= 100; ++i) values.push_back(static_cast<double>(i));
  print_cdf(os, "demo_series", values, 10);
  const std::string out = os.str();
  EXPECT_NE(out.find("series demo_series  (n=100)"), std::string::npos);
  // 10 machine-readable "p,x" lines.
  int rows = 0;
  std::istringstream lines(out);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.size() > 3 && line[0] == ' ' && line[2] == '0' && line.find(',') != std::string::npos) {
      ++rows;
    }
  }
  EXPECT_GE(rows, 9);  // "1,100" ends with p=1 formatting variation
}

TEST(Report, CdfSeriesValuesSortedAndTerminal) {
  std::ostringstream os;
  print_cdf(os, "s", {3.0, 1.0, 2.0}, 3);
  const std::string out = os.str();
  // The q=1 quantile is the maximum.
  EXPECT_NE(out.find("1,3"), std::string::npos);
}

TEST(Report, CdfHandlesEmptyInput) {
  std::ostringstream os;
  print_cdf(os, "empty", {});
  EXPECT_NE(os.str().find("(empty)"), std::string::npos);
}

TEST(Report, CompareShowsBothSidesAndDelta) {
  std::ostringstream os;
  print_compare(os, "metric", 2.0, 2.2, " MB");
  const std::string out = os.str();
  EXPECT_NE(out.find("paper=2 MB"), std::string::npos);
  EXPECT_NE(out.find("measured=2.2 MB"), std::string::npos);
  EXPECT_NE(out.find("+10%"), std::string::npos);
}

TEST(Report, CompareNegativeDelta) {
  std::ostringstream os;
  print_compare(os, "metric", 4.0, 3.0);
  EXPECT_NE(os.str().find("-25%"), std::string::npos);
}

TEST(Report, SummaryDelegatesToStats) {
  std::ostringstream os;
  const std::vector<double> xs{1.0, 2.0, 3.0};
  print_summary(os, "xs", xs);
  EXPECT_NE(os.str().find("n=3"), std::string::npos);
  EXPECT_NE(os.str().find("mean=2"), std::string::npos);
}

}  // namespace
}  // namespace aw4a::analysis
