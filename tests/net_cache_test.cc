#include "net/cache.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace aw4a::net {
namespace {

TEST(VisitSchedule, PaperDefaults) {
  const VisitSchedule s{};
  EXPECT_EQ(s.visit_count(), 29u);  // t=0 plus 28 half-day visits over 2 weeks
  EXPECT_EQ(s.visit_time(0), 0u);
  EXPECT_EQ(s.visit_time(2), 24u * 3600u);
}

TEST(InfiniteCache, NoStoreFetchesEveryVisit) {
  const std::vector<CacheItem> page{
      {.id = 1, .transfer_bytes = 1000, .policy = {.max_age_seconds = 0, .no_store = true}}};
  const auto r = simulate_infinite_cache(page, VisitSchedule{});
  EXPECT_EQ(r.first_visit_bytes, 1000u);
  EXPECT_EQ(r.total_bytes, 29u * 1000u);
  EXPECT_DOUBLE_EQ(r.avg_bytes_per_visit, 1000.0);
}

TEST(InfiniteCache, ImmortalObjectFetchedOnce) {
  const std::vector<CacheItem> page{
      {.id = 1,
       .transfer_bytes = 5000,
       .policy = {.max_age_seconds = 52 * CachePolicy::kWeek, .no_store = false}}};
  const auto r = simulate_infinite_cache(page, VisitSchedule{});
  EXPECT_EQ(r.total_bytes, 5000u);
  EXPECT_NEAR(r.avg_bytes_per_visit, 5000.0 / 29.0, 1e-9);
}

TEST(InfiniteCache, DailyMaxAgeRefetchPeriod) {
  const std::vector<CacheItem> page{
      {.id = 1,
       .transfer_bytes = 100,
       .policy = {.max_age_seconds = CachePolicy::kDay, .no_store = false}}};
  const auto r = simulate_infinite_cache(page, VisitSchedule{});
  // Fetch at t=0; the object is stale only *strictly after* 24h, so the
  // refetch lands on the 36h visit: period 36h => fetches at 0,36,...,324h
  // = 10 fetches across the 29 visits.
  EXPECT_EQ(r.total_bytes, 1000u);
}

TEST(InfiniteCache, TwoWeekMaxAgeSurvivesTheWholeSchedule) {
  const std::vector<CacheItem> page{
      {.id = 1,
       .transfer_bytes = 100,
       .policy = {.max_age_seconds = 2 * CachePolicy::kWeek, .no_store = false}}};
  const auto r = simulate_infinite_cache(page, VisitSchedule{});
  // The last visit is exactly at the max-age boundary (not stale).
  EXPECT_EQ(r.total_bytes, 100u);
}

TEST(SampledPolicyMix, MedianMaxAgeNearTwoWeeks) {
  Rng rng(1);
  std::vector<std::uint64_t> ages;
  for (int i = 0; i < 4000; ++i) {
    const CachePolicy p = sample_cache_policy(rng);
    ages.push_back(p.no_store ? 0 : p.max_age_seconds);
  }
  std::sort(ages.begin(), ages.end());
  const std::uint64_t median = ages[ages.size() / 2];
  // Paper footnote 10: median object max-age ~2 weeks.
  EXPECT_GE(median, CachePolicy::kWeek);
  EXPECT_LE(median, 3 * CachePolicy::kWeek);
}

TEST(LruByteCache, HitMissAndStale) {
  LruByteCache cache(10000);
  const CacheItem item{
      .id = 1,
      .transfer_bytes = 4000,
      .policy = {.max_age_seconds = CachePolicy::kDay, .no_store = false}};
  EXPECT_EQ(cache.fetch(item, 0), 4000u);            // cold miss
  EXPECT_EQ(cache.fetch(item, 3600), 0u);            // fresh hit
  EXPECT_EQ(cache.fetch(item, 2 * 86400), 4000u);    // stale refetch
  EXPECT_EQ(cache.used(), 4000u);
}

TEST(LruByteCache, EvictsLeastRecentlyUsed) {
  LruByteCache cache(10000);
  const CachePolicy immortal{.max_age_seconds = 52 * CachePolicy::kWeek, .no_store = false};
  const CacheItem a{.id = 1, .transfer_bytes = 4000, .policy = immortal};
  const CacheItem b{.id = 2, .transfer_bytes = 4000, .policy = immortal};
  const CacheItem c{.id = 3, .transfer_bytes = 4000, .policy = immortal};
  cache.fetch(a, 0);
  cache.fetch(b, 1);
  cache.fetch(a, 2);           // a now more recent than b
  cache.fetch(c, 3);           // evicts b
  EXPECT_EQ(cache.fetch(a, 4), 0u);
  EXPECT_EQ(cache.fetch(c, 5), 0u);
  EXPECT_EQ(cache.fetch(b, 6), 4000u);  // b was evicted
}

TEST(LruByteCache, OversizedObjectNeverAdmitted) {
  LruByteCache cache(1000);
  const CacheItem big{.id = 1,
                      .transfer_bytes = 5000,
                      .policy = {.max_age_seconds = CachePolicy::kDay, .no_store = false}};
  EXPECT_EQ(cache.fetch(big, 0), 5000u);
  EXPECT_EQ(cache.fetch(big, 1), 5000u);  // still a miss
  EXPECT_EQ(cache.used(), 0u);
}

TEST(LruByteCache, SharedCoreKeepsSimulationByteIdentical) {
  // Regression pin for the O(n)-scan -> util/lru.h rewrite: an adversarial
  // mix of hits, stale refetches, no-store items, evictions and clears must
  // reproduce the exact pre-rewrite transfer sequence.
  LruByteCache cache(10000);
  Rng rng(7);
  std::uint64_t checksum = 0;
  for (int i = 0; i < 5000; ++i) {
    CacheItem item;
    item.id = static_cast<std::uint64_t>(rng.uniform_int(1, 12));
    item.transfer_bytes = static_cast<Bytes>(500 + 250 * item.id);
    item.policy = {.max_age_seconds = (item.id % 3 == 0) ? 0u : 3600u * item.id,
                   .no_store = item.id % 5 == 0};
    const std::uint64_t now = static_cast<std::uint64_t>(i) * 700;
    checksum = checksum * 1099511628211ULL + cache.fetch(item, now);
    if (i % 977 == 0) cache.clear();
  }
  EXPECT_EQ(checksum, 15391330069952582146ULL);
  EXPECT_EQ(cache.used(), 8500u);
}

TEST(DeviceCache, BiggerDeviceSavesMore) {
  Rng rng(2);
  // 25 synthetic pages of ~40 x 60KB objects with the sampled policy mix.
  std::vector<std::vector<CacheItem>> pages;
  std::uint64_t id = 0;
  for (int p = 0; p < 25; ++p) {
    std::vector<CacheItem> page;
    for (int o = 0; o < 40; ++o) {
      page.push_back(CacheItem{.id = ++id,
                               .transfer_bytes = static_cast<Bytes>(rng.uniform(20e3, 120e3)),
                               .policy = sample_cache_policy(rng)});
    }
    pages.push_back(std::move(page));
  }
  const double nexus = simulate_device_cache(pages, VisitSchedule{}, nexus5());
  const double nokia = simulate_device_cache(pages, VisitSchedule{}, nokia1());
  EXPECT_GT(nexus, nokia);
  // Paper: Nexus 5 -60.9%, Nokia 1 -21.4%; generous bands for the synthetic mix.
  EXPECT_GT(nexus, 0.45);
  EXPECT_LT(nexus, 0.75);
  EXPECT_GT(nokia, 0.08);
  EXPECT_LT(nokia, 0.40);
  // Exact pins (captured before the util/lru.h rewrite): the refactor must
  // keep the simulation byte-identical, not merely in-band.
  EXPECT_DOUBLE_EQ(nexus, 0.66588748463276248);
  EXPECT_DOUBLE_EQ(nokia, 0.18808137021032711);
}

}  // namespace
}  // namespace aw4a::net
