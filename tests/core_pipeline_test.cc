#include "core/pipeline.h"

#include <gtest/gtest.h>

#include "dataset/corpus.h"
#include "util/rng.h"

namespace aw4a::core {
namespace {

web::WebPage rich_page(std::uint64_t seed = 40, double mb = 1.6) {
  dataset::CorpusGenerator gen(dataset::CorpusOptions{.seed = seed, .rich = true});
  Rng rng(seed);
  return gen.make_page(rng, from_mb(mb), gen.global_profile());
}

TEST(Pipeline, Stage1AloneForMildTargets) {
  const web::WebPage page = rich_page();
  const Aw4aPipeline pipeline;
  // A target Stage-1 can reach by itself (just under the original).
  const Bytes target = page.transfer_size() * 97 / 100;
  const auto result = pipeline.transcode_to_target(page, target);
  EXPECT_TRUE(result.met_target);
  EXPECT_EQ(result.algorithm, "stage1");
  EXPECT_DOUBLE_EQ(result.quality.qfs, 1.0);
}

TEST(Pipeline, Stage2EngagesForDeepTargets) {
  const web::WebPage page = rich_page();
  const Aw4aPipeline pipeline;
  const Bytes target = page.transfer_size() * 60 / 100;
  const auto result = pipeline.transcode_to_target(page, target);
  EXPECT_NE(result.algorithm.find("hbs"), std::string::npos);
  if (result.met_target) {
    EXPECT_LE(result.result_bytes, target);
  }
}

TEST(Pipeline, GridSearchBackendSelectable) {
  const web::WebPage page = rich_page(41, 0.8);
  DeveloperConfig config;
  config.stage2 = DeveloperConfig::Stage2::kGridSearch;
  config.grid_timeout_seconds = 10.0;
  const Aw4aPipeline pipeline(config);
  // Deep enough that Stage-1 alone cannot satisfy it.
  const Bytes target = page.transfer_size() * 55 / 100;
  const auto result = pipeline.transcode_to_target(page, target);
  EXPECT_NE(result.algorithm.find("grid-search"), std::string::npos);
}

TEST(Pipeline, QualityThresholdFlowsThrough) {
  const web::WebPage page = rich_page(42);
  DeveloperConfig config;
  config.min_image_ssim = 0.95;
  const Aw4aPipeline pipeline(config);
  const auto result = pipeline.transcode_to_target(page, page.transfer_size() / 2);
  EXPECT_GE(result.quality.qss, 0.95 - 1e-6);
}

TEST(Pipeline, CountryTargetUsesPaw) {
  const web::WebPage page = rich_page(43);
  const dataset::Country* honduras = dataset::find_country("Honduras");
  ASSERT_NE(honduras, nullptr);
  const double paw = paw_index(*honduras, net::PlanType::kDataOnly);
  ASSERT_GT(paw, 1.0);
  const Aw4aPipeline pipeline;
  const auto result =
      pipeline.transcode_for_country(page, *honduras, net::PlanType::kDataOnly);
  EXPECT_EQ(result.target_bytes, per_url_target(page.transfer_size(), paw));
}

TEST(Pipeline, AffordableCountryGetsNoReductionTarget) {
  const web::WebPage page = rich_page(44);
  const dataset::Country* usa = dataset::find_country("United States");
  ASSERT_NE(usa, nullptr);
  const Aw4aPipeline pipeline;
  const auto result = pipeline.transcode_for_country(page, *usa, net::PlanType::kDataOnly);
  EXPECT_TRUE(result.met_target);
  EXPECT_EQ(result.target_bytes, page.transfer_size());
}

TEST(Pipeline, BuildTiersCoversConfiguredReductions) {
  const web::WebPage page = rich_page(45);
  DeveloperConfig config;
  config.tier_reductions = {1.25, 1.5, 3.0};
  config.measure_qfs = false;  // keep the test fast
  const Aw4aPipeline pipeline(config);
  const auto tiers = pipeline.build_tiers(page);
  ASSERT_EQ(tiers.size(), 3u);
  for (std::size_t i = 0; i < tiers.size(); ++i) {
    EXPECT_DOUBLE_EQ(tiers[i].requested_reduction, config.tier_reductions[i]);
    if (tiers[i].result.met_target) {
      EXPECT_GE(tiers[i].achieved_reduction() + 1e-9, tiers[i].requested_reduction);
      EXPECT_GT(tiers[i].savings_fraction(), 0.0);
    }
  }
  // Tiers get progressively smaller (or equal when infeasible).
  EXPECT_LE(tiers[2].result.result_bytes, tiers[0].result.result_bytes);
}

TEST(Pipeline, RejectsBadConfig) {
  DeveloperConfig config;
  config.min_image_ssim = 1.5;
  EXPECT_THROW(Aw4aPipeline{config}, LogicError);

  DeveloperConfig negative_workers;
  negative_workers.prewarm_workers = -1;
  EXPECT_THROW(Aw4aPipeline{negative_workers}, LogicError);
}

// --- Cold-build fast path: shared cross-tier ladders + parallel prewarm
// must reproduce the seed per-tier behavior bit for bit. ---

TEST(Pipeline, SharedLadderCacheMatchesPerTierBuilds) {
  const web::WebPage page = rich_page(46, 0.9);
  DeveloperConfig config;
  config.tier_reductions = {1.25, 1.5, 3.0, 6.0};
  config.measure_qfs = false;
  const Aw4aPipeline pipeline(config);
  const Bytes original = page.transfer_size();

  // Seed behavior: a fresh cache per tier (the public single-shot API).
  std::vector<TranscodeResult> fresh;
  for (const double reduction : config.tier_reductions) {
    const Bytes target = static_cast<Bytes>(static_cast<double>(original) / reduction);
    fresh.push_back(pipeline.transcode_to_target(page, target));
  }

  // Fast path: one cache threaded through every tier.
  LadderCache ladders(pipeline.ladder_options());
  std::vector<TranscodeResult> cached;
  for (const double reduction : config.tier_reductions) {
    const Bytes target = static_cast<Bytes>(static_cast<double>(original) / reduction);
    cached.push_back(pipeline.transcode_to_target(page, target, ladders));
  }

  ASSERT_EQ(fresh.size(), cached.size());
  for (std::size_t i = 0; i < fresh.size(); ++i) {
    EXPECT_EQ(cached[i].result_bytes, fresh[i].result_bytes) << "tier " << i;
    EXPECT_DOUBLE_EQ(cached[i].quality.qss, fresh[i].quality.qss) << "tier " << i;
    EXPECT_EQ(cached[i].algorithm, fresh[i].algorithm) << "tier " << i;
    EXPECT_EQ(cached[i].met_target, fresh[i].met_target) << "tier " << i;
  }
}

TEST(Pipeline, BuildTiersWithPrewarmMatchesSerialBuild) {
  const web::WebPage page = rich_page(47, 0.9);
  DeveloperConfig config;
  config.tier_reductions = {1.5, 3.0, 6.0};
  config.measure_qfs = false;
  const auto serial = Aw4aPipeline(config).build_tiers(page);

  config.prewarm_workers = 4;
  const auto prewarmed = Aw4aPipeline(config).build_tiers(page);

  ASSERT_EQ(serial.size(), prewarmed.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(prewarmed[i].built, serial[i].built) << "tier " << i;
    EXPECT_EQ(prewarmed[i].result.result_bytes, serial[i].result.result_bytes) << "tier " << i;
    EXPECT_DOUBLE_EQ(prewarmed[i].result.quality.qss, serial[i].result.quality.qss)
        << "tier " << i;
    EXPECT_EQ(prewarmed[i].result.algorithm, serial[i].result.algorithm) << "tier " << i;
    EXPECT_EQ(prewarmed[i].result.met_target, serial[i].result.met_target) << "tier " << i;
  }
}

TEST(Pipeline, SharedCacheRejectsMismatchedOptions) {
  const web::WebPage page = rich_page(48, 0.4);
  DeveloperConfig strict;
  strict.min_image_ssim = 0.95;
  DeveloperConfig lax;
  lax.min_image_ssim = 0.7;
  const Aw4aPipeline pipeline(strict);
  LadderCache mismatched(Aw4aPipeline(lax).ladder_options());
  EXPECT_THROW((void)pipeline.transcode_to_target(page, page.transfer_size() / 2, mismatched),
               LogicError);
}

}  // namespace
}  // namespace aw4a::core
