#include "imaging/raster.h"

#include <gtest/gtest.h>

#include "imaging/synth.h"
#include "util/rng.h"

namespace aw4a::imaging {
namespace {

TEST(Raster, ConstructionAndAccess) {
  Raster img(4, 3, Pixel{10, 20, 30, 255});
  EXPECT_EQ(img.width(), 4);
  EXPECT_EQ(img.height(), 3);
  EXPECT_EQ(img.pixel_count(), 12u);
  EXPECT_FALSE(img.empty());
  EXPECT_EQ(img.at(0, 0), (Pixel{10, 20, 30, 255}));
  img.at(3, 2) = Pixel{1, 2, 3, 4};
  EXPECT_EQ(img.at(3, 2).a, 4);
}

TEST(Raster, BoundsChecked) {
  Raster img(2, 2);
  EXPECT_THROW((void)img.at(2, 0), LogicError);
  EXPECT_THROW((void)img.at(0, -1), LogicError);
}

TEST(Raster, ClampedAccessRepeatsEdges) {
  Raster img(2, 2);
  img.at(1, 1) = Pixel{9, 9, 9, 255};
  EXPECT_EQ(img.at_clamped(10, 10), img.at(1, 1));
  EXPECT_EQ(img.at_clamped(-5, 0), img.at(0, 0));
}

TEST(Raster, HasAlphaDetectsTransparency) {
  Raster opaque(3, 3, Pixel{0, 0, 0, 255});
  EXPECT_FALSE(opaque.has_alpha());
  opaque.at(1, 1).a = 128;
  EXPECT_TRUE(opaque.has_alpha());
}

TEST(Raster, FillRectClips) {
  Raster img(4, 4, Pixel{0, 0, 0, 255});
  img.fill_rect(2, 2, 10, 10, Pixel{255, 0, 0, 255});
  EXPECT_EQ(img.at(3, 3).r, 255);
  EXPECT_EQ(img.at(1, 1).r, 0);
  // Negative origin clips too.
  img.fill_rect(-2, -2, 3, 3, Pixel{0, 255, 0, 255});
  EXPECT_EQ(img.at(0, 0).g, 255);
}

TEST(Raster, CompositeBlendsAlpha) {
  Raster dst(2, 1, Pixel{0, 0, 0, 255});
  Raster src(1, 1, Pixel{255, 255, 255, 128});
  dst.composite(src, 0, 0);
  EXPECT_NEAR(dst.at(0, 0).r, 128, 1);
  EXPECT_EQ(dst.at(1, 0).r, 0);  // outside src untouched
}

TEST(Raster, LumaCompositesOverWhite) {
  Raster img(1, 1, Pixel{0, 0, 0, 0});  // fully transparent black
  const PlaneF luma = luma_plane(img);
  EXPECT_NEAR(luma.at(0, 0), 255.0f, 0.5f);  // shows the white background
}

TEST(Raster, LumaBt601Weights) {
  Raster img(1, 1, Pixel{255, 0, 0, 255});
  EXPECT_NEAR(luma_plane(img).at(0, 0), 0.299f * 255.0f, 0.5f);
}

TEST(Raster, ChannelPlaneExtraction) {
  Raster img(1, 1, Pixel{1, 2, 3, 4});
  EXPECT_EQ(channel_plane(img, 0).at(0, 0), 1.0f);
  EXPECT_EQ(channel_plane(img, 3).at(0, 0), 4.0f);
  EXPECT_THROW((void)channel_plane(img, 5), LogicError);
}

TEST(Raster, MeanAbsDiff) {
  Raster a(2, 2, Pixel{10, 10, 10, 255});
  Raster b(2, 2, Pixel{13, 10, 7, 255});
  EXPECT_NEAR(mean_abs_diff(a, b), 2.0, 1e-9);
  EXPECT_DOUBLE_EQ(mean_abs_diff(a, a), 0.0);
}

class SynthTest : public ::testing::TestWithParam<ImageClass> {};

TEST_P(SynthTest, ProducesRequestedDimensions) {
  Rng rng(1);
  const Raster img = synth_image(rng, GetParam(), 48, 32);
  EXPECT_EQ(img.width(), 48);
  EXPECT_EQ(img.height(), 32);
}

TEST_P(SynthTest, DeterministicInRngState) {
  Rng a(7);
  Rng b(7);
  const Raster x = synth_image(a, GetParam(), 32, 32);
  const Raster y = synth_image(b, GetParam(), 32, 32);
  EXPECT_EQ(mean_abs_diff(x, y), 0.0);
}

TEST_P(SynthTest, NotConstant) {
  Rng rng(3);
  const Raster img = synth_image(rng, GetParam(), 64, 64);
  const Pixel first = img.at(0, 0);
  bool varies = false;
  for (int y = 0; y < img.height() && !varies; ++y) {
    for (int x = 0; x < img.width(); ++x) {
      if (!(img.at(x, y) == first)) {
        varies = true;
        break;
      }
    }
  }
  EXPECT_TRUE(varies) << to_string(GetParam());
}

INSTANTIATE_TEST_SUITE_P(AllClasses, SynthTest, ::testing::ValuesIn(kAllImageClasses),
                         [](const auto& info) {
                           std::string name = to_string(info.param);
                           std::erase(name, '-');
                           return name;
                         });

TEST(Synth, ValueNoiseInUnitRange) {
  Rng rng(5);
  const PlaneF noise = value_noise(rng, 40, 40, 4);
  for (float v : noise.v) {
    EXPECT_GE(v, 0.0f);
    EXPECT_LE(v, 1.0f);
  }
}

TEST(Synth, ClassFrequenciesFavorPhotos) {
  Rng rng(6);
  int photos = 0;
  for (int i = 0; i < 2000; ++i) {
    if (sample_image_class(rng) == ImageClass::kPhoto) ++photos;
  }
  EXPECT_NEAR(photos / 2000.0, 0.38, 0.05);
}

}  // namespace
}  // namespace aw4a::imaging
