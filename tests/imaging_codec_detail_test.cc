// Tests of the codec internals: the PNG filter stream, the alpha-plane cost,
// and the lossy pipeline's cost-model knobs (codec_detail.h).
#include "imaging/codec_detail.h"

#include <gtest/gtest.h>

#include "imaging/ssim.h"
#include "imaging/synth.h"
#include "net/compress.h"
#include "util/rng.h"

namespace aw4a::imaging::detail {
namespace {

TEST(PngFilterStream, SizeMatchesRowLayout) {
  Raster img(10, 7, Pixel{50, 60, 70, 255});
  const auto rgb = png_filter_stream(img, /*include_alpha=*/false);
  EXPECT_EQ(rgb.size(), 7u * (1u + 10u * 3u));  // filter byte + RGB per row
  const auto rgba = png_filter_stream(img, /*include_alpha=*/true);
  EXPECT_EQ(rgba.size(), 7u * (1u + 10u * 4u));
}

TEST(PngFilterStream, FlatImageFiltersToNearZeros) {
  Raster img(32, 32, Pixel{123, 45, 67, 255});
  const auto stream = png_filter_stream(img, false);
  // A flat image filters into long zero runs -> compresses to almost nothing.
  EXPECT_LT(net::gzip_size(stream), stream.size() / 20);
}

TEST(PngFilterStream, NoisyImageResistsFiltering) {
  Rng rng(1);
  Raster img(32, 32);
  for (auto& p : img.pixels()) {
    p = Pixel{static_cast<std::uint8_t>(rng.uniform_int(0, 255)),
              static_cast<std::uint8_t>(rng.uniform_int(0, 255)),
              static_cast<std::uint8_t>(rng.uniform_int(0, 255)), 255};
  }
  const auto stream = png_filter_stream(img, false);
  EXPECT_GT(net::gzip_size(stream), stream.size() * 2 / 3);
}

TEST(AlphaPlaneCost, FlatAlphaIsCheapVariedAlphaIsNot) {
  Raster opaque(48, 48, Pixel{10, 10, 10, 255});
  const Bytes flat_cost = alpha_plane_cost(opaque);
  Rng rng(2);
  Raster varied = opaque;
  for (auto& p : varied.pixels()) p.a = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  EXPECT_LT(flat_cost, alpha_plane_cost(varied) / 4);
}

TEST(LossyEncode, PayloadScaleScalesPayloadOnly) {
  Rng rng(3);
  const Raster img = synth_image(rng, ImageClass::kPhoto, 64, 64);
  LossyParams base{.format = ImageFormat::kJpeg,
                   .payload_scale = 1.0,
                   .hf_quant_scale = 1.0,
                   .header_bytes = 100,
                   .alpha = false};
  LossyParams half = base;
  half.payload_scale = 0.5;
  const Encoded full = lossy_encode(img, 80, base);
  const Encoded scaled = lossy_encode(img, 80, half);
  EXPECT_EQ(full.header_bytes, 100u);
  EXPECT_NEAR(static_cast<double>(scaled.payload_bytes()),
              static_cast<double>(full.payload_bytes()) * 0.5,
              static_cast<double>(full.payload_bytes()) * 0.02 + 2.0);
  // The decoded pixels are identical — payload_scale is a cost model knob,
  // not a quality knob.
  EXPECT_EQ(mean_abs_diff(full.decoded, scaled.decoded), 0.0);
}

TEST(LossyEncode, FlatterHighFrequencyTablesKeepMoreDetail) {
  Rng rng(4);
  const Raster img = synth_image(rng, ImageClass::kTextBanner, 64, 64);
  LossyParams coarse{.format = ImageFormat::kJpeg,
                     .payload_scale = 1.0,
                     .hf_quant_scale = 1.0,
                     .header_bytes = 0,
                     .alpha = false};
  LossyParams fine = coarse;
  fine.hf_quant_scale = 0.5;  // halve HF quantization steps
  const double ssim_coarse = ssim(img, lossy_encode(img, 50, coarse).decoded);
  const double ssim_fine = ssim(img, lossy_encode(img, 50, fine).decoded);
  EXPECT_GE(ssim_fine, ssim_coarse);
  // And costs more bytes, as it must.
  EXPECT_GE(lossy_encode(img, 50, fine).bytes, lossy_encode(img, 50, coarse).bytes);
}

TEST(LossyEncode, AlphaFlagControlsTransparencyAndCost) {
  Rng rng(5);
  Raster img = synth_image(rng, ImageClass::kLogo, 40, 40);
  img.at(0, 0).a = 0;
  LossyParams no_alpha{.format = ImageFormat::kJpeg,
                       .payload_scale = 1.0,
                       .hf_quant_scale = 1.0,
                       .header_bytes = 0,
                       .alpha = false};
  LossyParams with_alpha = no_alpha;
  with_alpha.alpha = true;
  const Encoded flat = lossy_encode(img, 80, no_alpha);
  const Encoded kept = lossy_encode(img, 80, with_alpha);
  EXPECT_FALSE(flat.decoded.has_alpha());
  EXPECT_TRUE(kept.decoded.has_alpha());
  EXPECT_GT(kept.bytes, flat.bytes);  // the alpha plane costs bytes
}

TEST(LossyEncode, QualityOneStillDecodes) {
  Rng rng(6);
  const Raster img = synth_image(rng, ImageClass::kGradient, 24, 24);
  LossyParams params{.format = ImageFormat::kJpeg,
                     .payload_scale = 1.0,
                     .hf_quant_scale = 1.0,
                     .header_bytes = 10,
                     .alpha = false};
  const Encoded enc = lossy_encode(img, 1, params);  // worst quality
  EXPECT_EQ(enc.decoded.width(), 24);
  EXPECT_GT(enc.bytes, 10u);
  EXPECT_LT(ssim(img, enc.decoded), 1.0);
}

}  // namespace
}  // namespace aw4a::imaging::detail
