#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "util/stats.h"

namespace aw4a {
namespace {

TEST(Rng, DeterministicFromSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += a.next_u64() == b.next_u64() ? 1 : 0;
  EXPECT_LT(equal, 2);
}

TEST(Rng, ForkDoesNotAdvanceParent) {
  Rng parent(7);
  Rng probe(7);
  (void)parent.fork(1);
  (void)parent.fork("label");
  EXPECT_EQ(parent.next_u64(), probe.next_u64());
}

TEST(Rng, ForkedStreamsAreIndependent) {
  Rng parent(7);
  Rng a = parent.fork(1);
  Rng b = parent.fork(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += a.next_u64() == b.next_u64() ? 1 : 0;
  EXPECT_LT(equal, 2);
}

TEST(Rng, UniformInRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.5);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.5);
  }
}

TEST(Rng, UniformIntBoundsInclusive) {
  Rng rng(4);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(-2, 3);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 6u);  // all values hit
}

TEST(Rng, UniformIntDegenerateRange) {
  Rng rng(5);
  EXPECT_EQ(rng.uniform_int(7, 7), 7);
}

TEST(Rng, NormalMoments) {
  Rng rng(6);
  std::vector<double> xs(20000);
  for (auto& x : xs) x = rng.normal(10.0, 2.0);
  EXPECT_NEAR(mean(xs), 10.0, 0.1);
  EXPECT_NEAR(stdev(xs), 2.0, 0.1);
}

TEST(Rng, ParetoIsHeavyTailedAboveScale) {
  Rng rng(8);
  for (int i = 0; i < 1000; ++i) EXPECT_GE(rng.pareto(2.0, 1.5), 2.0);
}

TEST(Rng, ExponentialMean) {
  Rng rng(9);
  std::vector<double> xs(20000);
  for (auto& x : xs) x = rng.exponential(0.5);
  EXPECT_NEAR(mean(xs), 2.0, 0.1);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(10);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.02);
}

TEST(Rng, CategoricalRespectsWeights) {
  Rng rng(11);
  const double weights[] = {1.0, 3.0, 0.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 10000; ++i) ++counts[rng.categorical(weights)];
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(counts[1] / 10000.0, 0.75, 0.03);
}

TEST(Rng, CategoricalRejectsAllZero) {
  Rng rng(12);
  const double weights[] = {0.0, 0.0};
  EXPECT_THROW((void)rng.categorical(weights), LogicError);
}

TEST(Rng, ZipfRankOneMostFrequent) {
  Rng rng(13);
  int counts[6] = {0};
  for (int i = 0; i < 8000; ++i) ++counts[rng.zipf(5, 1.0)];
  EXPECT_GT(counts[1], counts[2]);
  EXPECT_GT(counts[2], counts[4]);
  EXPECT_EQ(counts[0], 0);  // ranks are 1-based
}

TEST(Rng, SampleIndicesDistinctAndBounded) {
  Rng rng(14);
  const auto sample = rng.sample_indices(20, 10);
  EXPECT_EQ(sample.size(), 10u);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 10u);
  for (auto i : sample) EXPECT_LT(i, 20u);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(15);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(StableHash, DiffersAcrossStringsAndIsStable) {
  EXPECT_EQ(stable_hash("pakistan"), stable_hash("pakistan"));
  EXPECT_NE(stable_hash("pakistan"), stable_hash("india"));
  EXPECT_NE(stable_hash(""), stable_hash("a"));
}

// Property sweep: distributions respect their support across parameters.
class RngParamTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngParamTest, LognormalPositive) {
  Rng rng(GetParam());
  for (int i = 0; i < 200; ++i) EXPECT_GT(rng.lognormal(0.0, 1.2), 0.0);
}

TEST_P(RngParamTest, Uniform53BitResolutionNeverOne) {
  Rng rng(GetParam());
  for (int i = 0; i < 200; ++i) EXPECT_LT(rng.uniform(), 1.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngParamTest,
                         ::testing::Values(1ull, 42ull, 999ull, 0xDEADBEEFull, 7777777ull));

}  // namespace
}  // namespace aw4a
