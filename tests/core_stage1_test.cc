#include "core/stage1.h"

#include <gtest/gtest.h>

#include "core/quality.h"
#include "dataset/corpus.h"
#include "util/rng.h"

namespace aw4a::core {
namespace {

web::WebPage rich_page(std::uint64_t seed = 6) {
  dataset::CorpusGenerator gen(dataset::CorpusOptions{.seed = seed, .rich = true});
  Rng rng(seed);
  return gen.make_page(rng, from_mb(2.0), gen.global_profile());
}

TEST(Stage1, SavesBytesWithoutQualityLoss) {
  const web::WebPage page = rich_page();
  web::ServedPage served = web::serve_original(page);
  LadderCache ladders;
  const Bytes saved = apply_stage1(served, ladders);
  EXPECT_GT(saved, 0u);
  EXPECT_EQ(served.transfer_size(), page.transfer_size() - saved);
  // Lossless by contract: QFS exactly 1, QSS above the transcode floor.
  EXPECT_DOUBLE_EQ(compute_qfs(served), 1.0);
  EXPECT_GE(compute_qss(served), Stage1Options{}.min_transcode_ssim - 1e-9);
}

TEST(Stage1, MinifiesEveryTextObject) {
  const web::WebPage page = rich_page();
  web::ServedPage served = web::serve_original(page);
  LadderCache ladders;
  apply_stage1(served, ladders);
  for (const auto& o : page.objects) {
    if (o.type == web::ObjectType::kHtml || o.type == web::ObjectType::kCss ||
        o.type == web::ObjectType::kJs || o.type == web::ObjectType::kFont) {
      EXPECT_LT(served.object_transfer(o), o.transfer_bytes) << to_string(o.type);
    }
  }
}

TEST(Stage1, WebpTranscodeOnlyWhenSmallerAndEquivalent) {
  const web::WebPage page = rich_page();
  web::ServedPage served = web::serve_original(page);
  LadderCache ladders;
  apply_stage1(served, ladders);
  for (const auto& [id, decision] : served.images) {
    ASSERT_TRUE(decision.variant.has_value());
    const web::WebObject* o = page.find(id);
    ASSERT_NE(o, nullptr);
    EXPECT_EQ(decision.variant->format, imaging::ImageFormat::kWebp);
    EXPECT_LT(decision.variant->bytes, o->transfer_bytes);
    EXPECT_GE(decision.variant->ssim, Stage1Options{}.min_transcode_ssim - 1e-9);
  }
}

TEST(Stage1, DisablingMinifyLeavesTextAlone) {
  const web::WebPage page = rich_page();
  web::ServedPage served = web::serve_original(page);
  LadderCache ladders;
  Stage1Options options;
  options.minify_gain = 1.0;
  options.font_metadata_fraction = 0.0;
  apply_stage1(served, ladders, options);
  for (const auto& o : page.objects) {
    if (o.type == web::ObjectType::kJs || o.type == web::ObjectType::kCss) {
      EXPECT_EQ(served.object_transfer(o), o.transfer_bytes);
    }
  }
}

TEST(Stage1, SkipsDroppedObjectsAndExistingDecisions) {
  const web::WebPage page = rich_page();
  web::ServedPage served = web::serve_original(page);
  // Pre-drop one text object and pre-decide one image.
  const web::WebObject* text = nullptr;
  const web::WebObject* image = nullptr;
  for (const auto& o : page.objects) {
    if (o.type == web::ObjectType::kCss && text == nullptr) text = &o;
    if (o.type == web::ObjectType::kImage && o.image != nullptr && image == nullptr) {
      image = &o;
    }
  }
  ASSERT_NE(text, nullptr);
  ASSERT_NE(image, nullptr);
  served.dropped.insert(text->id);
  imaging::ImageVariant pinned;
  pinned.bytes = 77;
  pinned.ssim = 0.5;
  served.images[image->id] = web::ServedImage{.variant = pinned, .dropped = false};

  LadderCache ladders;
  apply_stage1(served, ladders);
  EXPECT_EQ(served.object_transfer(*text), 0u);
  EXPECT_EQ(served.images[image->id].variant->bytes, 77u);
}

TEST(Stage1, TypicalSavingsShareIsModest) {
  // Stage-1 is the lossless pass: it trims single-digit-to-low-teens percent,
  // not the multi-x reductions of Stage-2.
  const web::WebPage page = rich_page(8);
  web::ServedPage served = web::serve_original(page);
  LadderCache ladders;
  const Bytes saved = apply_stage1(served, ladders);
  const double share = static_cast<double>(saved) / static_cast<double>(page.transfer_size());
  EXPECT_GT(share, 0.02);
  EXPECT_LT(share, 0.35);
}

}  // namespace
}  // namespace aw4a::core
