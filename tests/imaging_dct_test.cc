#include "imaging/dct.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.h"

namespace aw4a::imaging {
namespace {

TEST(Dct, RoundTripIsIdentity) {
  Rng rng(1);
  Block8 block{};
  for (auto& v : block) v = static_cast<float>(rng.uniform(-128, 128));
  const Block8 rec = idct8x8(dct8x8(block));
  for (int i = 0; i < 64; ++i) EXPECT_NEAR(rec[i], block[i], 1e-3f);
}

TEST(Dct, ConstantBlockIsPureDc) {
  Block8 block{};
  block.fill(50.0f);
  const Block8 freq = dct8x8(block);
  EXPECT_NEAR(freq[0], 50.0f * 8.0f, 1e-3f);  // DC = 8 * mean under this scaling
  for (int i = 1; i < 64; ++i) EXPECT_NEAR(freq[i], 0.0f, 1e-3f);
}

TEST(Dct, LinearityAndParseval) {
  Rng rng(2);
  Block8 a{};
  Block8 b{};
  for (auto& v : a) v = static_cast<float>(rng.uniform(-100, 100));
  for (auto& v : b) v = static_cast<float>(rng.uniform(-100, 100));
  Block8 sum{};
  for (int i = 0; i < 64; ++i) sum[i] = a[i] + b[i];
  const Block8 fa = dct8x8(a);
  const Block8 fb = dct8x8(b);
  const Block8 fsum = dct8x8(sum);
  double energy_spatial = 0;
  double energy_freq = 0;
  for (int i = 0; i < 64; ++i) {
    EXPECT_NEAR(fsum[i], fa[i] + fb[i], 1e-2f);
    energy_spatial += double(a[i]) * a[i];
    energy_freq += double(fa[i]) * fa[i];
  }
  // Orthonormal transform preserves energy (Parseval).
  EXPECT_NEAR(energy_freq / energy_spatial, 1.0, 1e-4);
}

TEST(Dct, HorizontalCosineHitsSingleCoefficient) {
  // A pure cos((2x+1) * 3 * pi / 16) pattern lands entirely in u=3, v=0.
  Block8 block{};
  for (int y = 0; y < 8; ++y) {
    for (int x = 0; x < 8; ++x) {
      block[y * 8 + x] =
          static_cast<float>(std::cos((2.0 * x + 1.0) * 3.0 * M_PI / 16.0));
    }
  }
  const Block8 freq = dct8x8(block);
  int nonzero = 0;
  for (int i = 0; i < 64; ++i) {
    if (std::abs(freq[i]) > 1e-3f) ++nonzero;
  }
  EXPECT_EQ(nonzero, 1);
  EXPECT_GT(std::abs(freq[3]), 1.0f);  // row v=0, column u=3
}

}  // namespace
}  // namespace aw4a::imaging
