#include "imaging/dct.h"

#include <gtest/gtest.h>

#include <cmath>

#include "imaging/raster.h"
#include "util/rng.h"

namespace aw4a::imaging {
namespace {

TEST(Dct, RoundTripIsIdentity) {
  Rng rng(1);
  Block8 block{};
  for (auto& v : block) v = static_cast<float>(rng.uniform(-128, 128));
  const Block8 rec = idct8x8(dct8x8(block));
  for (int i = 0; i < 64; ++i) EXPECT_NEAR(rec[i], block[i], 1e-3f);
}

TEST(Dct, ConstantBlockIsPureDc) {
  Block8 block{};
  block.fill(50.0f);
  const Block8 freq = dct8x8(block);
  EXPECT_NEAR(freq[0], 50.0f * 8.0f, 1e-3f);  // DC = 8 * mean under this scaling
  for (int i = 1; i < 64; ++i) EXPECT_NEAR(freq[i], 0.0f, 1e-3f);
}

TEST(Dct, LinearityAndParseval) {
  Rng rng(2);
  Block8 a{};
  Block8 b{};
  for (auto& v : a) v = static_cast<float>(rng.uniform(-100, 100));
  for (auto& v : b) v = static_cast<float>(rng.uniform(-100, 100));
  Block8 sum{};
  for (int i = 0; i < 64; ++i) sum[i] = a[i] + b[i];
  const Block8 fa = dct8x8(a);
  const Block8 fb = dct8x8(b);
  const Block8 fsum = dct8x8(sum);
  double energy_spatial = 0;
  double energy_freq = 0;
  for (int i = 0; i < 64; ++i) {
    EXPECT_NEAR(fsum[i], fa[i] + fb[i], 1e-2f);
    energy_spatial += double(a[i]) * a[i];
    energy_freq += double(fa[i]) * fa[i];
  }
  // Orthonormal transform preserves energy (Parseval).
  EXPECT_NEAR(energy_freq / energy_spatial, 1.0, 1e-4);
}

TEST(Dct, HorizontalCosineHitsSingleCoefficient) {
  // A pure cos((2x+1) * 3 * pi / 16) pattern lands entirely in u=3, v=0.
  Block8 block{};
  for (int y = 0; y < 8; ++y) {
    for (int x = 0; x < 8; ++x) {
      block[y * 8 + x] =
          static_cast<float>(std::cos((2.0 * x + 1.0) * 3.0 * M_PI / 16.0));
    }
  }
  const Block8 freq = dct8x8(block);
  int nonzero = 0;
  for (int i = 0; i < 64; ++i) {
    if (std::abs(freq[i]) > 1e-3f) ++nonzero;
  }
  EXPECT_EQ(nonzero, 1);
  EXPECT_GT(std::abs(freq[3]), 1.0f);  // row v=0, column u=3
}

// --- Fast kernels: pinned against the scalar reference. ---

TEST(DctFast, ForwardMatchesReferenceWithinPinnedBound) {
  Rng rng(3);
  for (int trial = 0; trial < 50; ++trial) {
    Block8 block{};
    for (auto& v : block) v = static_cast<float>(rng.uniform(-128, 128));
    const Block8 expected = dct8x8(block);
    Block8 fast{};
    fdct8x8_fast(block.data(), fast.data());
    for (int i = 0; i < 64; ++i) {
      ASSERT_NEAR(fast[i], expected[i], 1e-6f) << "coefficient " << i;
    }
  }
}

TEST(DctFast, InverseMatchesReferenceWithinPinnedBound) {
  Rng rng(4);
  for (int trial = 0; trial < 50; ++trial) {
    Block8 freq{};
    for (auto& v : freq) v = static_cast<float>(rng.uniform(-1024, 1024));
    const Block8 expected = idct8x8(freq);
    Block8 fast{};
    idct8x8_fast(freq.data(), fast.data());
    for (int i = 0; i < 64; ++i) {
      ASSERT_NEAR(fast[i], expected[i], 1e-6f) << "sample " << i;
    }
  }
}

TEST(DctFast, RoundTripIsIdentity) {
  Rng rng(5);
  Block8 block{};
  for (auto& v : block) v = static_cast<float>(rng.uniform(-128, 128));
  Block8 freq{};
  Block8 rec{};
  fdct8x8_fast(block.data(), freq.data());
  idct8x8_fast(freq.data(), rec.data());
  for (int i = 0; i < 64; ++i) EXPECT_NEAR(rec[i], block[i], 1e-3f);
}

// forward_dct_plane must reproduce the single-shot encoder's per-block
// extraction exactly: interior blocks read rows directly, edge blocks
// clamp-pad — both against the same reference transform.
TEST(DctFast, ForwardPlaneMatchesPerBlockReference) {
  Rng rng(6);
  PlaneF plane(21, 13);  // deliberately not multiples of 8: edge blocks on both axes
  for (auto& v : plane.v) v = static_cast<float>(rng.uniform(0, 255));

  const float bias = -128.0f;
  const CoeffPlane coeffs = forward_dct_plane(plane, bias);
  ASSERT_EQ(coeffs.blocks_w, 3);
  ASSERT_EQ(coeffs.blocks_h, 2);
  ASSERT_EQ(coeffs.coeffs.size(), 64u * 3 * 2);

  for (int by = 0; by < coeffs.blocks_h; ++by) {
    for (int bx = 0; bx < coeffs.blocks_w; ++bx) {
      Block8 block{};
      for (int y = 0; y < 8; ++y) {
        for (int x = 0; x < 8; ++x) {
          block[y * 8 + x] = plane.at_clamped(bx * 8 + x, by * 8 + y) + bias;
        }
      }
      const Block8 expected = dct8x8(block);
      const float* got = coeffs.block(bx, by);
      for (int i = 0; i < 64; ++i) {
        ASSERT_NEAR(got[i], expected[i], 1e-6f)
            << "block (" << bx << "," << by << ") coefficient " << i;
      }
    }
  }
}

// The DC-only specialization must be *bit-identical* to the general fast
// kernel (the encoder swaps it in per block, and golden outputs pin the
// reconstruction exactly) — so EXPECT_EQ, not NEAR. Negative, zero, and
// large DC values cover the sign/zero cases of the exactness argument.
TEST(DctFast, DcOnlyMatchesGeneralKernelBitExactly) {
  const float dcs[] = {0.0f, 1.0f, -1.0f, 16.0f, -240.0f, 1016.0f, -1016.0f, 3.0f};
  for (const float dc : dcs) {
    Block8 freq{};
    freq[0] = dc;
    Block8 general{};
    idct8x8_fast(freq.data(), general.data());
    Block8 dconly{};
    idct8x8_dconly_fast(dc, dconly.data());
    for (int i = 0; i < 64; ++i) {
      ASSERT_EQ(dconly[i], general[i]) << "dc " << dc << " sample " << i;
    }
  }
}

// The sparsity-masked kernel must also be bit-identical to the general one
// for any correct mask. Random blocks at several sparsity levels exercise
// partial row/column masks; the all-nonzero draw degenerates to full masks.
TEST(DctFast, MaskedMatchesGeneralKernelBitExactly) {
  Rng rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    // keep_per_64 sweeps from very sparse (DC-ish) to fully dense.
    const int keep_per_64 = 1 + trial % 64;
    Block8 freq{};
    for (int i = 0; i < 64; ++i) {
      if (rng.uniform(0, 63) < keep_per_64) {
        freq[i] = static_cast<float>(rng.uniform(-1016, 1016));
      }
    }
    unsigned row_mask = 0;
    unsigned col_mask = 0;
    for (int i = 0; i < 64; ++i) {
      const unsigned nz = freq[i] != 0.0f;
      row_mask |= nz << (i >> 3);
      col_mask |= nz << (i & 7);
    }
    Block8 general{};
    idct8x8_fast(freq.data(), general.data());
    Block8 masked{};
    idct8x8_fast_masked(freq.data(), masked.data(), row_mask, col_mask);
    for (int i = 0; i < 64; ++i) {
      ASSERT_EQ(masked[i], general[i])
          << "trial " << trial << " sample " << i << " row_mask " << row_mask
          << " col_mask " << col_mask;
    }
  }
}

// The sparse direct-store kernel must be bit-identical to the masked kernel
// followed by a +128.0f biased copy, for any nonzero pattern and any row
// stride — it is the fused rANS decoder's few-coefficient fast path.
TEST(DctFast, SparseBiasedMatchesMaskedPlusBiasBitExactly) {
  Rng rng(11);
  for (int trial = 0; trial < 300; ++trial) {
    const int n_nz = trial % 7;  // the caller gates on <= 4; cover past it
    Block8 freq{};
    for (int k = 0; k < n_nz; ++k) {
      freq[static_cast<std::size_t>(rng.uniform_int(0, 63))] =
          static_cast<float>(rng.uniform(-1016, 1016));
    }
    unsigned row_mask = 0;
    unsigned col_mask = 0;
    for (int i = 0; i < 64; ++i) {
      const unsigned nz = freq[i] != 0.0f;
      row_mask |= nz << (i >> 3);
      col_mask |= nz << (i & 7);
    }
    if (col_mask == 0) continue;  // all-zero block: callers take the DC path
    Block8 masked{};
    idct8x8_fast_masked(freq.data(), masked.data(), row_mask, col_mask);
    const std::size_t stride = 8 + static_cast<std::size_t>(trial % 3) * 13;
    std::vector<float> plane(8 * stride, -1.0f);
    idct8x8_sparse_biased(freq.data(), row_mask, col_mask, plane.data(), stride);
    for (int y = 0; y < 8; ++y) {
      for (int x = 0; x < 8; ++x) {
        ASSERT_EQ(plane[static_cast<std::size_t>(y) * stride + x],
                  masked[y * 8 + x] + 128.0f)
            << "trial " << trial << " y " << y << " x " << x;
      }
    }
  }
}

}  // namespace
}  // namespace aw4a::imaging
