// Tests of the exact DP solver (Appendix A.2's bounded-knapsack mapping).
#include "core/knapsack.h"

#include <gtest/gtest.h>

#include "core/grid_search.h"
#include "core/rbr.h"
#include "dataset/corpus.h"
#include "util/rng.h"

namespace aw4a::core {
namespace {

web::WebPage rich_page(std::uint64_t seed, double mb = 0.9) {
  dataset::CorpusGenerator gen(dataset::CorpusOptions{.seed = seed, .rich = true});
  Rng rng(seed);
  return gen.make_page(rng, from_mb(mb), gen.global_profile());
}

TEST(Knapsack, TrivialTargetKeepsFullQuality) {
  const web::WebPage page = rich_page(100);
  web::ServedPage served = web::serve_original(page);
  LadderCache ladders;
  const auto outcome = knapsack_optimize(served, page.transfer_size(), ladders);
  EXPECT_TRUE(outcome.met_target);
  EXPECT_DOUBLE_EQ(outcome.qss, 1.0);
}

TEST(Knapsack, FeasibleSolutionsRespectBudgetAndQt) {
  const web::WebPage page = rich_page(101);
  web::ServedPage served = web::serve_original(page);
  LadderCache ladders;
  const Bytes target = page.transfer_size() * 80 / 100;
  const auto outcome = knapsack_optimize(served, target, ladders);
  if (outcome.met_target) {
    EXPECT_LE(served.transfer_size(), target);
    EXPECT_GE(outcome.qss, 0.9 - 1e-9);
  }
  for (const auto& [id, decision] : served.images) {
    if (decision.variant) {
      EXPECT_GE(decision.variant->ssim, 0.9 - 1e-9);
    }
  }
}

TEST(Knapsack, MatchesOrBeatsGridSearchOnSameCandidates) {
  // Same candidate set, exact optimization: the DP can only lose to Grid
  // Search through byte quantization, bounded by granularity per image.
  for (std::uint64_t seed : {102ull, 103ull, 104ull}) {
    const web::WebPage page = rich_page(seed);
    LadderCache ladders;
    const Bytes target = page.transfer_size() * 82 / 100;

    web::ServedPage gs_served = web::serve_original(page);
    GridSearchOptions gs_options;
    gs_options.timeout_seconds = 20.0;
    const auto gs = grid_search(gs_served, target, ladders, gs_options);

    web::ServedPage dp_served = web::serve_original(page);
    KnapsackOptions dp_options;
    dp_options.byte_granularity = 1 * kKB;
    const auto dp = knapsack_optimize(dp_served, target, ladders, dp_options);

    if (gs.met_target && !gs.timed_out && dp.met_target) {
      EXPECT_GE(dp.qss + 5e-3, gs.qss) << "seed " << seed;  // quantization slack
    }
  }
}

TEST(Knapsack, NeverWorseThanRbrOnItsOwnMoves) {
  // RBR may still win overall (its resolution moves are outside the DP's
  // candidate set), but whenever RBR's result uses only byte-heavier pages,
  // the DP's QSS at the same budget is the exact ceiling of full-res moves.
  const web::WebPage page = rich_page(105, 1.2);
  LadderCache ladders;
  const Bytes target = page.transfer_size() * 85 / 100;
  web::ServedPage rbr_served = web::serve_original(page);
  const auto rbr = rank_based_reduce(rbr_served, target, ladders);
  web::ServedPage dp_served = web::serve_original(page);
  const auto dp = knapsack_optimize(dp_served, target, ladders);
  if (rbr.met_target && dp.met_target) {
    EXPECT_GT(dp.qss, 0.9);
    EXPECT_GT(compute_qss(rbr_served), 0.9);
  }
}

TEST(Knapsack, InfeasibleTargetInstallsByteMinimalFloor) {
  const web::WebPage page = rich_page(106);
  web::ServedPage served = web::serve_original(page);
  LadderCache ladders;
  const auto outcome = knapsack_optimize(served, 1, ladders);
  EXPECT_FALSE(outcome.met_target);
  EXPECT_LT(outcome.bytes_after, page.transfer_size());
}

TEST(Knapsack, FinerGranularityNeverHurts) {
  const web::WebPage page = rich_page(107);
  LadderCache ladders;
  const Bytes target = page.transfer_size() * 85 / 100;
  auto run = [&](Bytes granularity) {
    web::ServedPage served = web::serve_original(page);
    KnapsackOptions options;
    options.byte_granularity = granularity;
    return knapsack_optimize(served, target, ladders, options);
  };
  const auto coarse = run(16 * kKB);
  const auto fine = run(1 * kKB);
  if (coarse.met_target && fine.met_target) {
    EXPECT_GE(fine.qss + 1e-9, coarse.qss);
  }
  EXPECT_GT(fine.cells, coarse.cells);  // the cost of precision
}

TEST(Knapsack, RoundingUpNeverViolatesBudget) {
  // Bucketing rounds costs up, so a "met" verdict is trustworthy even at
  // huge granularity.
  const web::WebPage page = rich_page(108);
  LadderCache ladders;
  web::ServedPage served = web::serve_original(page);
  KnapsackOptions options;
  options.byte_granularity = 64 * kKB;
  const Bytes target = page.transfer_size() * 90 / 100;
  const auto outcome = knapsack_optimize(served, target, ladders, options);
  if (outcome.met_target) {
    EXPECT_LE(served.transfer_size(), target);
  }
}

}  // namespace
}  // namespace aw4a::core
