#include "core/hbs.h"

#include <gtest/gtest.h>

#include "dataset/corpus.h"
#include "util/rng.h"

namespace aw4a::core {
namespace {

web::WebPage rich_page(std::uint64_t seed = 30, double mb = 1.8) {
  dataset::CorpusGenerator gen(dataset::CorpusOptions{.seed = seed, .rich = true});
  Rng rng(seed);
  return gen.make_page(rng, from_mb(mb), gen.global_profile());
}

TEST(Muzeel, ApplyShrinksScriptBytes) {
  const web::WebPage page = rich_page();
  web::ServedPage served = web::serve_original(page);
  const Bytes before = served.transfer_size(web::ObjectType::kJs);
  const Bytes saved = apply_muzeel(served);
  EXPECT_GT(saved, 0u);
  EXPECT_EQ(served.transfer_size(web::ObjectType::kJs), before - saved);
  // Every script now has an explicit live set.
  for (const auto& o : page.objects) {
    if (o.type == web::ObjectType::kJs && o.script != nullptr) {
      EXPECT_TRUE(served.scripts.count(o.id));
    }
  }
}

TEST(Hbs, MildTargetMetByJsAloneKeepsImagesIntact) {
  const web::WebPage page = rich_page(31);
  // Target just below what Muzeel alone achieves.
  web::ServedPage probe = web::serve_original(page);
  apply_muzeel(probe);
  const Bytes muzeel_size = probe.transfer_size();
  if (muzeel_size >= page.transfer_size()) GTEST_SKIP();

  LadderCache ladders;
  const auto result = hbs_transcode(page, web::serve_original(page), muzeel_size, ladders);
  EXPECT_TRUE(result.met_target);
  EXPECT_LE(result.result_bytes, muzeel_size);
}

TEST(Hbs, ChoosesApproachBWhenImagesAloneSuffice) {
  // For mild targets both approaches succeed; B (images only, QFS = 1) wins
  // unless A somehow scores higher — overall the winner's quality dominates.
  const web::WebPage page = rich_page(32);
  LadderCache ladders;
  const Bytes target = page.transfer_size() * 90 / 100;
  const auto result = hbs_transcode(page, web::serve_original(page), target, ladders);
  EXPECT_TRUE(result.met_target);
  EXPECT_GE(result.quality.quality, 0.9);
  EXPECT_TRUE(result.algorithm == "hbs/rbr" || result.algorithm == "hbs/muzeel+rbr");
}

TEST(Hbs, DeepTargetUsesBothStagesAndReportsQuality) {
  const web::WebPage page = rich_page(33, 2.4);
  LadderCache ladders;
  const Bytes target = page.transfer_size() * 55 / 100;
  const auto result = hbs_transcode(page, web::serve_original(page), target, ladders);
  EXPECT_LE(result.quality.qss, 1.0);
  EXPECT_GE(result.quality.qss, 0.9 - 1e-9);  // Qt floor holds regardless
  EXPECT_GT(result.result_bytes, 0u);
  EXPECT_GT(result.elapsed_seconds, 0.0);
  if (result.met_target) {
    EXPECT_LE(result.result_bytes, target);
  }
}

TEST(Hbs, InfeasibleTargetReturnsSmallerOfTheTwo) {
  const web::WebPage page = rich_page(34);
  LadderCache ladders;
  const auto result = hbs_transcode(page, web::serve_original(page), 1, ladders);
  EXPECT_FALSE(result.met_target);
  EXPECT_LT(result.result_bytes, page.transfer_size());
}

TEST(Hbs, RespectsBaseDecisions) {
  // Decisions made before HBS (e.g. Stage-1 drops) survive in the result.
  const web::WebPage page = rich_page(35);
  web::ServedPage base = web::serve_original(page);
  const web::WebObject* css = nullptr;
  for (const auto& o : page.objects) {
    if (o.type == web::ObjectType::kCss) {
      css = &o;
      break;
    }
  }
  ASSERT_NE(css, nullptr);
  base.dropped.insert(css->id);
  LadderCache ladders;
  const auto result =
      hbs_transcode(page, std::move(base), page.transfer_size() * 80 / 100, ladders);
  EXPECT_TRUE(result.served.is_dropped(css->id));
}

TEST(Hbs, ReductionFactorConsistent) {
  const web::WebPage page = rich_page(36);
  LadderCache ladders;
  const auto result =
      hbs_transcode(page, web::serve_original(page), page.transfer_size() * 70 / 100, ladders);
  EXPECT_NEAR(result.reduction_factor(),
              static_cast<double>(page.transfer_size()) /
                  static_cast<double>(result.result_bytes),
              1e-9);
}

}  // namespace
}  // namespace aw4a::core
