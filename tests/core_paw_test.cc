#include "core/paw.h"

#include <gtest/gtest.h>

#include "util/error.h"

namespace aw4a::core {
namespace {

TEST(Paw, PaperWorkedExample) {
  // §3.1: W=1.5MB, P=5%, W_global=2.47MB, P_T=2% => PAW = 1.52.
  const PawInputs in{.price_pct = 5.0, .avg_page_mb = 1.5, .global_avg_mb = 2.47,
                     .target_pct = 2.0};
  EXPECT_NEAR(paw_index(in), 1.52, 0.005);
}

TEST(Paw, UnitValueAtExactTarget) {
  const PawInputs in{.price_pct = 2.0, .avg_page_mb = 2.47};
  EXPECT_NEAR(paw_index(in), 1.0, 1e-12);
}

TEST(Paw, LinearInPriceAndSize) {
  const PawInputs base{.price_pct = 4.0, .avg_page_mb = 2.0};
  PawInputs doubled_price = base;
  doubled_price.price_pct *= 2;
  PawInputs doubled_size = base;
  doubled_size.avg_page_mb *= 2;
  EXPECT_NEAR(paw_index(doubled_price), 2 * paw_index(base), 1e-12);
  EXPECT_NEAR(paw_index(doubled_size), 2 * paw_index(base), 1e-12);
}

TEST(Paw, RejectsNonPositiveInputs) {
  EXPECT_THROW((void)paw_index(PawInputs{.price_pct = 0.0, .avg_page_mb = 1.0}), LogicError);
  EXPECT_THROW((void)paw_index(PawInputs{.price_pct = 1.0, .avg_page_mb = 0.0}), LogicError);
}

TEST(Paw, CachedIndexBarelyMoves) {
  // §3.2: caching rescales numerator and denominator almost equally, so the
  // index is nearly unchanged. With our constants (0.413 country factor vs
  // 1.02/2.47 global) the shift is a few percent.
  const dataset::Country* c = dataset::find_country("Kenya");
  ASSERT_NE(c, nullptr);
  const double cold = paw_index(*c, net::PlanType::kDataOnly, false);
  const double cached = paw_index(*c, net::PlanType::kDataOnly, true);
  EXPECT_NEAR(cached / cold, 1.0, 0.05);
}

TEST(Paw, TargetAvgPageSize) {
  // W_T = (P_T/P_i) * W_global: a country at 4% must halve its pages.
  EXPECT_NEAR(target_avg_page_mb(4.0), 2.47 / 2.0, 1e-9);
  EXPECT_NEAR(target_avg_page_mb(2.0), 2.47, 1e-9);
  EXPECT_THROW((void)target_avg_page_mb(0.0), LogicError);
}

TEST(Paw, PerUrlTarget) {
  EXPECT_EQ(per_url_target(1000000, 2.0), 500000u);
  // PAW <= 1: no reduction required.
  EXPECT_EQ(per_url_target(1000000, 0.8), 1000000u);
  EXPECT_THROW((void)per_url_target(100, 0.0), LogicError);
}

TEST(Paw, AccessesWithinTarget) {
  // At exactly the target price, a 2 GB plan and 2 MB pages: 1000 accesses.
  EXPECT_NEAR(accesses_within_target(2.0, net::PlanType::kDataOnly, 2.0), 1000.0, 1e-6);
  // Twice the price halves the affordable accesses.
  EXPECT_NEAR(accesses_within_target(4.0, net::PlanType::kDataOnly, 2.0), 500.0, 1e-6);
  // DVLU's 500 MB plan gives a quarter of DO's accesses.
  EXPECT_NEAR(accesses_within_target(2.0, net::PlanType::kDataVoiceLowUsage, 2.0), 250.0,
              1e-6);
}

TEST(Paw, ReductionByPawEqualizesAccess) {
  // Reducing a failing country's pages by its PAW factor brings it to the
  // target: PAW of the reduced world is 1.
  const dataset::Country* honduras = dataset::find_country("Honduras");
  ASSERT_NE(honduras, nullptr);
  const double paw = paw_index(*honduras, net::PlanType::kDataOnly);
  ASSERT_GT(paw, 1.0);
  const PawInputs reduced{.price_pct = honduras->price_pct(net::PlanType::kDataOnly),
                          .avg_page_mb = honduras->mean_page_mb / paw};
  EXPECT_NEAR(paw_index(reduced), 1.0, 1e-9);
}

}  // namespace
}  // namespace aw4a::core
