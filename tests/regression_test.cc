// Golden regression tests: exact values pinned for fixed seeds. These fail
// on ANY behavioural change to the RNG, corpus generation, codecs or
// optimizers — by design. If a change is intentional, re-pin the constants
// and say so in the commit; if it is not, you just caught a regression no
// tolerance-band test would see.
#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "dataset/corpus.h"
#include "imaging/ssim.h"
#include "imaging/synth.h"
#include "net/compress.h"
#include "util/rng.h"

namespace aw4a {
namespace {

TEST(Golden, RngStreamStableAcrossConstructions) {
  Rng fresh(42);
  const std::uint64_t a = fresh.next_u64();
  const std::uint64_t b = fresh.next_u64();
  Rng again(42);
  EXPECT_EQ(again.next_u64(), a);
  EXPECT_EQ(again.next_u64(), b);
  // Forked streams are equally stable.
  EXPECT_EQ(Rng(42).fork("x").next_u64(), Rng(42).fork("x").next_u64());
}

// The constants below were produced by this implementation and are asserted
// exactly. Update them deliberately or not at all.
class GoldenValues : public ::testing::Test {
 protected:
  static web::WebPage page() {
    dataset::CorpusGenerator gen(dataset::CorpusOptions{.seed = 777, .rich = true});
    Rng rng(777);
    return gen.make_page(rng, from_mb(1.5), gen.global_profile());
  }
};

TEST_F(GoldenValues, CorpusPageIsByteStable) {
  const web::WebPage p = page();
  // Pin the structure rather than one magic number: two independent builds
  // must agree bit-for-bit on every object.
  const web::WebPage q = page();
  ASSERT_EQ(p.objects.size(), q.objects.size());
  for (std::size_t i = 0; i < p.objects.size(); ++i) {
    EXPECT_EQ(p.objects[i].id, q.objects[i].id);
    EXPECT_EQ(p.objects[i].transfer_bytes, q.objects[i].transfer_bytes);
    EXPECT_EQ(p.objects[i].raw_bytes, q.objects[i].raw_bytes);
    EXPECT_EQ(p.objects[i].injected_by, q.objects[i].injected_by);
  }
  EXPECT_EQ(p.layout.size(), q.layout.size());
}

TEST_F(GoldenValues, GzipOfFixedTextIsStable) {
  Rng rng(99);
  const std::string body = net::synth_text(rng, net::TextClass::kJs, 20000);
  const Bytes first = net::gzip_size(body);
  EXPECT_EQ(net::gzip_size(body), first);
  EXPECT_GT(first, 1000u);   // sanity: real compression happened
  EXPECT_LT(first, 12000u);  // and a real ratio
}

TEST_F(GoldenValues, SsimOfFixedPairIsStable) {
  Rng rng(5);
  const imaging::Raster a = imaging::synth_image(rng, imaging::ImageClass::kPhoto, 64, 64);
  const imaging::Raster b = imaging::synth_image(rng, imaging::ImageClass::kPhoto, 64, 64);
  const double s1 = imaging::ssim(a, b);
  const double s2 = imaging::ssim(a, b);
  EXPECT_DOUBLE_EQ(s1, s2);
  EXPECT_GT(s1, 0.0);
  EXPECT_LT(s1, 1.0);
}

TEST_F(GoldenValues, PipelineResultIsRunToRunIdentical) {
  auto run = [] {
    const web::WebPage p = page();
    core::DeveloperConfig config;
    config.measure_qfs = false;
    const auto result =
        core::Aw4aPipeline(config).transcode_to_target(p, p.transfer_size() * 7 / 10);
    return std::make_tuple(result.result_bytes, result.quality.qss,
                           result.served.images.size(), result.served.scripts.size());
  };
  EXPECT_EQ(run(), run());
}

TEST_F(GoldenValues, CountryTableIsFrozen) {
  // The calibrated table is a build artifact (tools/gen_countries.py): any
  // regeneration must be deliberate. Pin a few entries exactly.
  const dataset::Country* pk = dataset::find_country("Pakistan");
  ASSERT_NE(pk, nullptr);
  EXPECT_DOUBLE_EQ(pk->price_do, 0.96);
  const dataset::Country* hn = dataset::find_country("Honduras");
  ASSERT_NE(hn, nullptr);
  EXPECT_NEAR(hn->price_do * hn->mean_page_mb, 4.7 * 2.0 * 2.47, 0.2);
  EXPECT_EQ(dataset::countries().size(), 99u);
  EXPECT_EQ(dataset::global_price_distribution(net::PlanType::kDataOnly).size(), 206u);
}

}  // namespace
}  // namespace aw4a
