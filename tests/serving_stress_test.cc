// Concurrency hammering for the serving subsystem, written to run clean
// under ThreadSanitizer (tools/tier1.sh builds it with -DAW4A_SANITIZE=thread).
//
// The contracts under load:
//   - TierCache + SingleFlight give exactly ONE build per key, no matter how
//     many threads miss at once;
//   - no waiter is lost: every call returns a ladder or observes its
//     flight's one failure;
//   - counters stay coherent (inserts == keys, duplicate inserts == 0, hits
//     + misses == lookups).
// Builds here are cheap fakes so the schedule churns; one OriginServer test
// at the end runs real pipeline builds end to end.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "dataset/corpus.h"
#include "serving/origin.h"
#include "serving/single_flight.h"
#include "serving/tier_cache.h"
#include "util/error.h"
#include "util/rng.h"

namespace aw4a::serving {
namespace {

TierKey key_of(std::uint64_t site) { return TierKey{site, 1, net::PlanType::kDataOnly}; }

/// The ladder_for() protocol under test: cache fetch, single-flight, leader
/// double-check, build, admit. Returns the ladder every caller ended up with.
LadderPtr cached_build(TierCache& cache, SingleFlight<TierKey, TierLadder, TierKeyHash>& flight,
                       const TierKey& key, std::atomic<std::uint64_t>& builds) {
  if (LadderPtr resident = cache.fetch(key, 0.0)) return resident;
  return flight.run(key, [&]() -> LadderPtr {
    if (LadderPtr resident = cache.fetch(key, 0.0)) return resident;
    builds.fetch_add(1, std::memory_order_relaxed);
    auto ladder = std::make_shared<TierLadder>();
    ladder->tiers.resize(1);
    ladder->cost_bytes = 1000;
    cache.insert(key, ladder, 0.0);
    return ladder;
  });
}

TEST(ServingStress, ExactlyOneBuildPerKeyAcrossThreads) {
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kKeys = 16;
  constexpr std::size_t kIterations = 400;

  TierCache cache(TierCacheOptions{.capacity_bytes = 64 * kMB, .shards = 4});
  SingleFlight<TierKey, TierLadder, TierKeyHash> flight;
  std::vector<std::atomic<std::uint64_t>> builds(kKeys);
  std::atomic<std::uint64_t> lost_waiters{0};

  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng = Rng(2024).fork(t);
      for (std::size_t i = 0; i < kIterations; ++i) {
        const auto k = static_cast<std::uint64_t>(rng.uniform_int(0, kKeys - 1));
        const LadderPtr ladder = cached_build(cache, flight, key_of(k), builds[k]);
        if (ladder == nullptr || ladder->tiers.empty()) lost_waiters.fetch_add(1);
      }
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(lost_waiters.load(), 0u) << "every caller must get a ladder";
  std::uint64_t total_builds = 0;
  for (std::size_t k = 0; k < kKeys; ++k) {
    EXPECT_EQ(builds[k].load(), 1u) << "key " << k << " built more than once";
    total_builds += builds[k].load();
  }
  EXPECT_EQ(total_builds, kKeys);

  const TierCacheStats stats = cache.stats();
  EXPECT_EQ(stats.inserts, kKeys);
  EXPECT_EQ(stats.resident_entries, kKeys);
  EXPECT_EQ(stats.evictions, 0u);
  // Every iteration did the outer lookup; each leader added a double-check.
  // All of them must be accounted as a hit or a miss, and the misses must be
  // exactly the outer misses (which all went to the flight) plus the kKeys
  // leader double-checks that found nothing and really built.
  const SingleFlightStats f = flight.stats();
  EXPECT_EQ(stats.hits + stats.misses, kThreads * kIterations + f.leads);
  EXPECT_EQ(stats.misses, f.leads + f.joins + kKeys);
}

TEST(ServingStress, FailingLeaderNeverStrandsWaiters) {
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kIterations = 200;
  SingleFlight<int, int> flight;
  std::atomic<std::uint64_t> attempts{0};
  std::atomic<std::uint64_t> successes{0};
  std::atomic<std::uint64_t> failures{0};

  // Every odd-numbered build attempt of the key fails: flights alternate
  // between dissolving in error and succeeding, under full contention.
  const auto build = [&]() -> std::shared_ptr<const int> {
    const auto n = attempts.fetch_add(1) + 1;
    if (n % 2 == 1) throw TransientError("flaky leader " + std::to_string(n));
    return std::make_shared<const int>(static_cast<int>(n));
  };

  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (std::size_t i = 0; i < kIterations; ++i) {
        try {
          const auto value = flight.run(7, build);
          ASSERT_NE(value, nullptr);
          successes.fetch_add(1);
        } catch (const TransientError&) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(successes.load() + failures.load(), kThreads * kIterations)
      << "no call may block forever or vanish";
  EXPECT_GT(successes.load(), 0u);
  EXPECT_GT(failures.load(), 0u);
  EXPECT_EQ(flight.stats().leads, attempts.load())
      << "every attempt had exactly one leader";
  EXPECT_EQ(flight.in_flight(), 0u);
}

TEST(ServingStress, EvictionChurnStaysCoherent) {
  // Capacity for only ~4 of 32 keys per shard: constant eviction while all
  // threads fetch/insert. The invariant is accounting, not residency.
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kKeys = 32;
  constexpr std::size_t kIterations = 500;
  TierCache cache(TierCacheOptions{.capacity_bytes = 8 * 1000, .shards = 2});
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng = Rng(77).fork(t);
      for (std::size_t i = 0; i < kIterations; ++i) {
        const TierKey key = key_of(static_cast<std::uint64_t>(rng.uniform_int(0, kKeys - 1)));
        if (cache.fetch(key, 0.0) == nullptr) {
          auto ladder = std::make_shared<TierLadder>();
          ladder->tiers.resize(1);
          ladder->cost_bytes = 1000;
          cache.insert(key, ladder, 0.0);
        }
        if (i % 97 == 0) cache.invalidate_site(key.site_id);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  const TierCacheStats stats = cache.stats();
  EXPECT_LE(stats.resident_bytes, 8u * 1000u);
  EXPECT_EQ(stats.resident_bytes, stats.resident_entries * 1000u);
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_GE(stats.inserts, stats.evictions + stats.invalidations);
}

TEST(ServingStress, OriginServerConcurrentRealBuilds) {
  dataset::CorpusGenerator gen(dataset::CorpusOptions{.seed = 17, .rich = true});
  Rng rng(17);
  core::DeveloperConfig config;
  config.tier_reductions = {2.0};
  config.min_image_ssim = 0.8;
  config.measure_qfs = false;
  std::vector<OriginSite> sites;
  sites.push_back(OriginSite{"site-0.example", gen.make_page(rng, 250 * kKB, gen.global_profile()),
                             config, net::PlanType::kDataVoiceLowUsage});
  sites.push_back(OriginSite{"site-1.example", gen.make_page(rng, 250 * kKB, gen.global_profile()),
                             config, net::PlanType::kDataVoiceLowUsage});
  const OriginServer origin(sites);

  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kRequests = 6;
  std::atomic<std::uint64_t> bad_responses{0};
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (std::size_t i = 0; i < kRequests; ++i) {
        net::HttpRequest request;
        request.headers = {{"Host", (t + i) % 2 == 0 ? "site-0.example" : "site-1.example"},
                           {"Save-Data", "on"},
                           {"X-Geo-Country", "ET"}};
        const auto response = origin.handle(request);
        if (response.status != 200 || response.header("AW4A-Tier") == nullptr) {
          bad_responses.fetch_add(1);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(bad_responses.load(), 0u);
  const MetricsSnapshot m = origin.metrics();
  EXPECT_EQ(m.requests_total, kThreads * kRequests);
  EXPECT_EQ(m.builds_started, 2u) << "one real build per site, ever";
  EXPECT_EQ(m.duplicate_builds, 0u);
  EXPECT_EQ(m.internal_errors, 0u);
  EXPECT_EQ(m.served_degraded, 0u);
  EXPECT_GT(origin.cache_stats().hits, 0u);
  // The stats endpoint is safe to read while metrics settle.
  net::HttpRequest stats_request;
  stats_request.path = "/aw4a/stats";
  EXPECT_EQ(origin.handle(stats_request).status, 200);
}

TEST(ServingStress, PrewarmedColdBuildsUnderConcurrentLoad) {
  // The parallel ladder prewarm inside cold builds, exercised under TSan:
  // multiple origin builds may run concurrently (two sites here), each
  // spinning up its own prewarm worker pool, while request threads hammer
  // the cache. Outputs must match a serial (no-prewarm) origin's bit for bit.
  dataset::CorpusGenerator gen(dataset::CorpusOptions{.seed = 23, .rich = true});
  Rng rng(23);
  core::DeveloperConfig config;
  config.tier_reductions = {2.0, 4.0};
  config.min_image_ssim = 0.8;
  config.measure_qfs = false;
  std::vector<OriginSite> sites;
  sites.push_back(OriginSite{"warm-0.example", gen.make_page(rng, 220 * kKB, gen.global_profile()),
                             config, net::PlanType::kDataVoiceLowUsage});
  sites.push_back(OriginSite{"warm-1.example", gen.make_page(rng, 220 * kKB, gen.global_profile()),
                             config, net::PlanType::kDataVoiceLowUsage});

  OriginOptions prewarm_options;
  prewarm_options.prewarm_workers = 4;
  const OriginServer prewarmed(sites, std::move(prewarm_options));

  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kRequests = 5;
  std::atomic<std::uint64_t> bad_responses{0};
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (std::size_t i = 0; i < kRequests; ++i) {
        net::HttpRequest request;
        request.headers = {{"Host", (t + i) % 2 == 0 ? "warm-0.example" : "warm-1.example"},
                           {"Save-Data", "on"},
                           {"X-Geo-Country", "ET"}};
        const auto response = prewarmed.handle(request);
        if (response.status != 200 || response.header("AW4A-Tier") == nullptr) {
          bad_responses.fetch_add(1);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(bad_responses.load(), 0u);
  const MetricsSnapshot m = prewarmed.metrics();
  EXPECT_EQ(m.builds_started, 2u) << "prewarm must not break single-flight";
  EXPECT_EQ(m.internal_errors, 0u);
  EXPECT_EQ(m.served_degraded, 0u);

  // Differential check: a serial origin serves byte-identical pages.
  const OriginServer serial(sites);
  for (const char* host : {"warm-0.example", "warm-1.example"}) {
    net::HttpRequest request;
    request.headers = {{"Host", host}, {"Save-Data", "on"}, {"X-Geo-Country", "ET"}};
    const auto a = prewarmed.handle(request);
    const auto b = serial.handle(request);
    EXPECT_EQ(net::serialize(a), net::serialize(b)) << host;
  }
}

}  // namespace
}  // namespace aw4a::serving
