#include "util/table.h"

#include <gtest/gtest.h>

#include "util/bytes.h"
#include "util/error.h"

namespace aw4a {
namespace {

TEST(TextTable, RendersAlignedColumns) {
  TextTable t({"country", "paw"});
  t.add_row({"Pakistan", "0.55"});
  t.add_row({"Honduras", "4.7"});
  const std::string out = t.render();
  EXPECT_NE(out.find("country"), std::string::npos);
  EXPECT_NE(out.find("Pakistan"), std::string::npos);
  // Header underline present.
  EXPECT_NE(out.find("---"), std::string::npos);
  // Columns align: "paw" starts at the same offset in header and rows.
  const auto header_col = out.find("paw");
  const auto row_col = out.find("0.55");
  EXPECT_EQ(header_col % (out.find('\n') + 1), row_col % (out.find('\n') + 1));
}

TEST(TextTable, AddRowValuesFormats) {
  TextTable t({"name", "a", "b"});
  const double vals[] = {1.5, 2.0};
  t.add_row_values("x", vals, 2);
  EXPECT_EQ(t.rows(), 1u);
  const std::string out = t.render();
  EXPECT_NE(out.find("1.5"), std::string::npos);
  EXPECT_NE(out.find("2"), std::string::npos);
}

TEST(TextTable, RejectsMismatchedRow) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), LogicError);
}

TEST(AsciiCdf, ContainsAllPoints) {
  const std::vector<double> xs{1.0, 2.0, 4.0};
  const std::vector<double> ps{0.33, 0.66, 1.0};
  const std::string out = ascii_cdf(xs, ps, "MB");
  EXPECT_NE(out.find("MB"), std::string::npos);
  EXPECT_EQ(std::count(out.begin(), out.end(), '*'), 3);
}

TEST(AsciiBars, ScalesToWidth) {
  const std::vector<std::string> labels{"js", "image"};
  const std::vector<double> values{1.0, 2.0};
  const std::string out = ascii_bars(labels, values, 10);
  // The larger bar has exactly `width` hashes, the smaller roughly half.
  EXPECT_NE(out.find(std::string(10, '#')), std::string::npos);
  EXPECT_EQ(out.find(std::string(11, '#')), std::string::npos);
}

TEST(Fmt, TrimsTrailingZeros) {
  EXPECT_EQ(fmt(1.500, 3), "1.5");
  EXPECT_EQ(fmt(2.0, 3), "2");
  EXPECT_EQ(fmt(0.25, 2), "0.25");
  EXPECT_EQ(fmt(-0.0001, 2), "0");
}

TEST(Bytes, Formatting) {
  EXPECT_EQ(format_bytes(97), "97 B");
  EXPECT_EQ(format_bytes(from_kb(145)), "145.0 KB");
  EXPECT_EQ(format_bytes(from_mb(2.47)), "2.47 MB");
}

TEST(Bytes, Conversions) {
  EXPECT_DOUBLE_EQ(to_mb(from_mb(2.83)), 2.83);
  EXPECT_NEAR(to_kb(from_kb(1569.0)), 1569.0, 1e-9);
  EXPECT_EQ(from_mb(1.0), 1000000u);
}

}  // namespace
}  // namespace aw4a
