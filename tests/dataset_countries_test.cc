// Calibration tests: the embedded table must reproduce the aggregates the
// paper reports (DESIGN.md §1 lists the full set).
#include "dataset/countries.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/paw.h"
#include "util/error.h"
#include "util/stats.h"

namespace aw4a::dataset {
namespace {

TEST(Countries, StudySetComposition) {
  const auto all = countries();
  EXPECT_EQ(all.size(), 99u);
  const auto developing = std::count_if(all.begin(), all.end(),
                                        [](const Country& c) { return c.developing; });
  EXPECT_EQ(developing, 82);
  EXPECT_EQ(countries_with_prices().size(), 96u);
}

TEST(Countries, MissingPriceDataExactlySyriaTaiwanVenezuela) {
  std::vector<std::string_view> missing;
  for (const Country& c : countries()) {
    if (!c.has_price_data) missing.push_back(c.name);
  }
  std::sort(missing.begin(), missing.end());
  EXPECT_EQ(missing, (std::vector<std::string_view>{"Syria", "Taiwan", "Venezuela"}));
}

TEST(Countries, PakistanDataOnlyPriceMatchesPaper) {
  const Country* pk = find_country("Pakistan");
  ASSERT_NE(pk, nullptr);
  EXPECT_NEAR(pk->price_do, 0.96, 1e-6);  // paper §3.2
}

TEST(Countries, NamedAnchorsPresent) {
  for (const char* name : {"India", "Ethiopia", "United States", "Germany", "Canada"}) {
    EXPECT_NE(find_country(name), nullptr) << name;
  }
  EXPECT_EQ(find_country("Atlantis"), nullptr);
}

TEST(Countries, EveryCountryHasAUniqueIso2Code) {
  std::vector<std::string_view> codes;
  for (const Country& c : countries()) {
    ASSERT_EQ(c.code.size(), 2u) << c.name << " lacks an ISO-2 code";
    for (const char ch : c.code) {
      EXPECT_TRUE(ch >= 'A' && ch <= 'Z') << c.name << ": " << c.code;
    }
    codes.push_back(c.code);
  }
  std::sort(codes.begin(), codes.end());
  EXPECT_EQ(std::adjacent_find(codes.begin(), codes.end()), codes.end())
      << "duplicate ISO-2 code in the table";
}

TEST(Countries, LookupByCode) {
  const Country* et = find_country_by_code("ET");
  ASSERT_NE(et, nullptr);
  EXPECT_EQ(et->name, "Ethiopia");
  EXPECT_EQ(find_country_by_code("et"), nullptr);  // lookups are exact; the
  // HTTP layer normalizes to uppercase before calling.
  EXPECT_EQ(find_country_by_code("XX"), nullptr);
  EXPECT_EQ(find_country_by_code(""), nullptr);
}

TEST(Countries, PageSizeDistributionMatchesPaper) {
  std::vector<double> developing;
  std::vector<double> developed;
  std::vector<double> all;
  for (const Country& c : countries()) {
    (c.developing ? developing : developed).push_back(c.mean_page_mb);
    all.push_back(c.mean_page_mb);
  }
  // Paper §2.2: developing 2.87 (sd 0.56), developed 2.64 (sd 0.46),
  // overall 2.83 (sd 0.55).
  EXPECT_NEAR(mean(developing), 2.87, 0.15);
  EXPECT_NEAR(mean(developed), 2.64, 0.20);
  EXPECT_NEAR(mean(all), 2.83, 0.15);
  EXPECT_NEAR(stdev(all), 0.55, 0.25);
  EXPECT_GT(mean(developing), mean(developed));
}

TEST(Countries, PriceRangesMatchPaper) {
  // Paper §2.1: DO 0.07-41%, DVLU 0.13-38.4%, DVHU 0.13-56.9% over 206.
  const auto check = [](net::PlanType plan, double lo, double hi) {
    const auto prices = global_price_distribution(plan);
    EXPECT_EQ(prices.size(), 206u);
    EXPECT_NEAR(min_of(prices), lo, 0.08) << net::plan_code(plan);
    EXPECT_NEAR(max_of(prices), hi, 0.5) << net::plan_code(plan);
  };
  check(net::PlanType::kDataOnly, 0.07, 41.0);
  check(net::PlanType::kDataVoiceLowUsage, 0.13, 38.4);
  check(net::PlanType::kDataVoiceHighUsage, 0.13, 56.9);
}

TEST(Countries, FractionAboveTargetMatchesPaper) {
  // Paper: 41-52% of countries miss the 2% target across plans.
  for (net::PlanType plan : net::kAllPlans) {
    const auto prices = global_price_distribution(plan);
    const double above =
        static_cast<double>(std::count_if(prices.begin(), prices.end(),
                                          [](double p) { return p > 2.0; })) /
        static_cast<double>(prices.size());
    EXPECT_GE(above, 0.40) << net::plan_code(plan);
    EXPECT_LE(above, 0.53) << net::plan_code(plan);
  }
}

TEST(Countries, Fig10SetOrderAndMembership) {
  const auto fig10 = fig10_countries();
  ASSERT_EQ(fig10.size(), 25u);
  EXPECT_EQ(fig10.front()->name, "Uzbekistan");
  EXPECT_EQ(fig10.back()->name, "Honduras");
  // Ascending DVLU PAW, all > 1.
  double prev = 0.0;
  for (const Country* c : fig10) {
    const double paw = core::paw_index(*c, net::PlanType::kDataVoiceLowUsage);
    EXPECT_GT(paw, 1.0) << c->name;
    EXPECT_GT(paw, prev) << c->name;
    prev = paw;
  }
}

TEST(Countries, PawMaximaMatchPaper) {
  double max_do = 0;
  double max_dvhu = 0;
  for (const Country* c : countries_with_prices()) {
    max_do = std::max(max_do, core::paw_index(*c, net::PlanType::kDataOnly));
    max_dvhu = std::max(max_dvhu, core::paw_index(*c, net::PlanType::kDataVoiceHighUsage));
  }
  EXPECT_NEAR(max_do, 4.7, 0.1);     // paper §3.2
  EXPECT_NEAR(max_dvhu, 13.2, 0.2);  // paper §3.2
}

TEST(Countries, FortyEightFailAtLeastOnePlan) {
  int failing = 0;
  for (const Country* c : countries_with_prices()) {
    for (net::PlanType plan : net::kAllPlans) {
      if (core::paw_index(*c, plan) > 1.0) {
        ++failing;
        break;
      }
    }
  }
  EXPECT_EQ(failing, 48);  // paper §3.2
}

TEST(Countries, DevelopedCountriesAllMeetTarget) {
  for (const Country* c : countries_with_prices()) {
    if (c->developing) continue;
    for (net::PlanType plan : net::kAllPlans) {
      EXPECT_LE(core::paw_index(*c, plan), 1.0) << c->name;
    }
  }
}

TEST(Countries, PriceAccessorRequiresData) {
  const Country* syria = find_country("Syria");
  ASSERT_NE(syria, nullptr);
  EXPECT_THROW((void)syria->price_pct(net::PlanType::kDataOnly), aw4a::LogicError);
}

}  // namespace
}  // namespace aw4a::dataset
