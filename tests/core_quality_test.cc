#include "core/quality.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/hbs.h"
#include "core/objective.h"
#include "dataset/corpus.h"
#include "util/rng.h"

namespace aw4a::core {
namespace {

web::WebPage rich_page(std::uint64_t seed = 4) {
  dataset::CorpusGenerator gen(dataset::CorpusOptions{.seed = seed, .rich = true});
  Rng rng(seed);
  return gen.make_page(rng, from_mb(1.5), gen.global_profile());
}

TEST(Qss, OriginalPageScoresOne) {
  const web::WebPage page = rich_page();
  EXPECT_DOUBLE_EQ(compute_qss(web::serve_original(page)), 1.0);
}

TEST(Qss, DroppedImageScoresZeroWeightedByArea) {
  const web::WebPage page = rich_page();
  const auto images = rich_images(page);
  ASSERT_GE(images.size(), 2u);
  web::ServedPage served = web::serve_original(page);
  served.images[images[0]->id] = web::ServedImage{.variant = std::nullopt, .dropped = true};
  double total_area = 0;
  for (const auto* img : images) total_area += img->image->display_area();
  const double expected = 1.0 - images[0]->image->display_area() / total_area;
  EXPECT_NEAR(compute_qss(served), expected, 1e-9);
}

TEST(Qss, VariantSsimEntersAreaWeighted) {
  const web::WebPage page = rich_page();
  const auto images = rich_images(page);
  web::ServedPage served = web::serve_original(page);
  imaging::ImageVariant v;
  v.ssim = 0.8;
  v.bytes = 100;
  served.images[images[0]->id] = web::ServedImage{.variant = v, .dropped = false};
  double total_area = 0;
  for (const auto* img : images) total_area += img->image->display_area();
  const double expected =
      (total_area - 0.2 * images[0]->image->display_area()) / total_area;
  EXPECT_NEAR(compute_qss(served), expected, 1e-9);
}

TEST(Qss, PageWithoutImagesScoresOne) {
  web::WebPage page;
  page.id = 1;
  EXPECT_DOUBLE_EQ(compute_qss(web::serve_original(page)), 1.0);
}

TEST(Qfs, OriginalPageScoresOne) {
  const web::WebPage page = rich_page();
  EXPECT_DOUBLE_EQ(compute_qfs(web::serve_original(page)), 1.0);
}

TEST(Qfs, ImageOnlyReductionsScoreExactlyOne) {
  // Paper §7.2: approach B (RBR only) always has QFS = 1.
  const web::WebPage page = rich_page();
  web::ServedPage served = web::serve_original(page);
  for (const auto* img : rich_images(page)) {
    imaging::ImageVariant v;
    v.ssim = 0.5;
    v.bytes = 10;
    served.images[img->id] = web::ServedImage{.variant = v, .dropped = false};
  }
  EXPECT_DOUBLE_EQ(compute_qfs(served), 1.0);
}

TEST(Qfs, DroppingAllScriptsHurts) {
  // Find a seed whose page draws at least one JS-controlled widget; dropping
  // all scripts then visibly kills it (statically and per event).
  for (std::uint64_t seed = 4; seed < 12; ++seed) {
    const web::WebPage page = rich_page(seed);
    const bool has_widget_block =
        std::any_of(page.layout.begin(), page.layout.end(), [](const web::LayoutBlock& b) {
          return b.kind == web::LayoutBlock::Kind::kWidget;
        });
    if (!has_widget_block || web::enumerate_events(page).empty()) continue;
    web::ServedPage served = web::serve_original(page);
    for (const auto& o : page.objects) {
      if (o.type == web::ObjectType::kJs) served.dropped.insert(o.id);
    }
    EXPECT_LT(compute_qfs(served), 1.0) << "seed " << seed;
    return;
  }
  FAIL() << "no seed produced a page with widgets";
}

TEST(Quality, OverallWeightsNormalize) {
  EXPECT_DOUBLE_EQ(overall_quality(0.8, 0.6, {.qss = 1.0, .qfs = 1.0}), 0.7);
  EXPECT_DOUBLE_EQ(overall_quality(0.8, 0.6, {.qss = 1.0, .qfs = 0.0}), 0.8);
  EXPECT_DOUBLE_EQ(overall_quality(0.8, 0.6, {.qss = 3.0, .qfs = 1.0}), 0.75);
  EXPECT_THROW((void)overall_quality(1, 1, {.qss = 0.0, .qfs = 0.0}), LogicError);
}

TEST(Quality, EvaluateBundlesBoth) {
  const web::WebPage page = rich_page();
  const QualityReport r = evaluate_quality(web::serve_original(page));
  EXPECT_DOUBLE_EQ(r.qss, 1.0);
  EXPECT_DOUBLE_EQ(r.qfs, 1.0);
  EXPECT_DOUBLE_EQ(r.quality, 1.0);
  const QualityReport skip = evaluate_quality(web::serve_original(page), {}, false);
  EXPECT_DOUBLE_EQ(skip.qfs, 1.0);
}

TEST(Objective, WeightedQualityMatchesEq3) {
  const std::vector<ObjectiveTerm> terms{{2.0, 1.0}, {1.0, 0.4}, {1.0, 0.8}};
  EXPECT_NEAR(weighted_quality(terms), (2.0 + 0.4 + 0.8) / 4.0, 1e-12);
  EXPECT_THROW((void)weighted_quality({}), LogicError);
}

TEST(Objective, LadderCacheMemoizes) {
  const web::WebPage page = rich_page();
  const auto images = rich_images(page);
  ASSERT_FALSE(images.empty());
  LadderCache cache;
  auto& a = cache.ladder_for(*images[0]);
  auto& b = cache.ladder_for(*images[0]);
  EXPECT_EQ(&a, &b);
  EXPECT_THROW((void)cache.ladder_for(page.objects[0]), LogicError);  // html object
}

}  // namespace
}  // namespace aw4a::core
