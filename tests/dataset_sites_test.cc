// Tests for the inner-pages extension (paper §10 future work).
#include <gtest/gtest.h>

#include <set>

#include "dataset/corpus.h"
#include "net/cache.h"
#include "util/rng.h"

namespace aw4a::dataset {
namespace {

using web::ObjectType;

CorpusGenerator::Site make_test_site(std::uint64_t seed = 5, int inner = 3) {
  CorpusGenerator gen(CorpusOptions{.seed = seed});
  Rng rng(seed);
  return gen.make_site(rng, from_mb(2.4), gen.global_profile(), inner);
}

TEST(Site, InnerPagesCountAndUrls) {
  const auto site = make_test_site();
  ASSERT_EQ(site.inner.size(), 3u);
  for (const auto& page : site.inner) {
    EXPECT_NE(page.url.find("/inner-"), std::string::npos);
  }
}

TEST(Site, InnerPagesAreLighter) {
  const auto site = make_test_site();
  for (const auto& page : site.inner) {
    EXPECT_LT(page.transfer_size(), site.landing.transfer_size());
    // Text-heavier: HTML share above the landing page's.
    const double landing_html =
        static_cast<double>(site.landing.transfer_size(ObjectType::kHtml)) /
        static_cast<double>(site.landing.transfer_size());
    const double inner_html = static_cast<double>(page.transfer_size(ObjectType::kHtml)) /
                              static_cast<double>(page.transfer_size());
    EXPECT_GT(inner_html, landing_html);
  }
}

TEST(Site, SitewideAssetsShareObjectIds) {
  const auto site = make_test_site();
  std::set<std::uint64_t> landing_ids;
  for (const auto& o : site.landing.objects) landing_ids.insert(o.id);
  for (const auto& page : site.inner) {
    int shared = 0;
    for (const auto& o : page.objects) {
      if (landing_ids.count(o.id)) {
        ++shared;
        // A shared object is byte-identical (same resource).
        const web::WebObject* original = site.landing.find(o.id);
        ASSERT_NE(original, nullptr);
        EXPECT_EQ(o.transfer_bytes, original->transfer_bytes);
        EXPECT_EQ(o.type, original->type);
      }
    }
    EXPECT_GT(shared, 0) << "inner page shares nothing with the landing page";
  }
}

TEST(Site, AllCssAndFontsAreShared) {
  const auto site = make_test_site(7);
  std::set<std::uint64_t> landing_ids;
  for (const auto& o : site.landing.objects) landing_ids.insert(o.id);
  for (const auto& page : site.inner) {
    for (const auto& o : page.objects) {
      if (o.type == ObjectType::kCss || o.type == ObjectType::kFont) {
        // Sitewide by construction: these came from the landing page.
        const bool from_landing = landing_ids.count(o.id) > 0;
        if (from_landing) SUCCEED();
      }
    }
    // At least one CSS object is the landing page's.
    const bool any_css_shared =
        std::any_of(page.objects.begin(), page.objects.end(), [&](const web::WebObject& o) {
          return o.type == ObjectType::kCss && landing_ids.count(o.id);
        });
    EXPECT_TRUE(any_css_shared);
  }
}

TEST(Site, SharingSavesSessionBytes) {
  const auto site = make_test_site(8);
  net::LruByteCache cache(512 * kMB);
  Bytes with_sharing = 0;
  Bytes without = site.landing.transfer_size();
  for (const auto& o : site.landing.objects) {
    with_sharing += cache.fetch(web::to_cache_item(o), 0);
  }
  for (const auto& page : site.inner) {
    without += page.transfer_size();
    for (const auto& o : page.objects) {
      with_sharing += cache.fetch(web::to_cache_item(o), 1);
    }
  }
  EXPECT_LT(with_sharing, without);
}

TEST(Site, ZeroInnerPagesAllowed) {
  const auto site = make_test_site(9, 0);
  EXPECT_TRUE(site.inner.empty());
  EXPECT_GT(site.landing.transfer_size(), 0u);
}

}  // namespace
}  // namespace aw4a::dataset
