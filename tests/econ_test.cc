#include <gtest/gtest.h>

#include <cmath>

#include "econ/ratings.h"
#include "econ/user_study.h"
#include "econ/utility.h"
#include "util/error.h"

namespace aw4a::econ {
namespace {

TEST(Utility, CobbDouglasForm) {
  const UserParams u{.quality_weight = 0.4, .access_weight = 0.6};
  EXPECT_NEAR(utility(u, std::exp(1.0), std::exp(2.0)), 0.4 + 1.2, 1e-12);
  EXPECT_THROW((void)utility(u, 0.0, 1.0), LogicError);
}

TEST(Utility, ConcaveInBothArguments) {
  const UserParams u{.quality_weight = 0.5, .access_weight = 0.5};
  // Diminishing returns: the gain from 100->200 accesses exceeds 200->300.
  const double d1 = utility(u, 1.0, 200) - utility(u, 1.0, 100);
  const double d2 = utility(u, 1.0, 300) - utility(u, 1.0, 200);
  EXPECT_GT(d1, d2);
}

TEST(Utility, IndifferenceSlopeMatchesFormula) {
  const UserParams u{.quality_weight = 2.0, .access_weight = 1.0};
  // dW/dA = -(b/A)/(a/W) = -(1/A) * (W/2).
  EXPECT_NEAR(indifference_slope(u, 4.0, 8.0), -(1.0 / 8.0) / (2.0 / 4.0), 1e-12);
}

TEST(Utility, GainConditionConsistentWithUtility) {
  // For users where the condition holds, utility must actually increase
  // across the (small) move, and vice versa for a strongly failing case.
  const UserParams access_lover{.quality_weight = 0.1, .access_weight = 0.9};
  const UserParams quality_lover{.quality_weight = 0.9, .access_weight = 0.1};
  const double w0 = 2.47;
  const double a0 = 100;
  const double w1 = 2.40;
  const double a1 = 110;
  EXPECT_EQ(utility_gain_condition(access_lover, w0, a0, w1, a1),
            utility(access_lover, w1, a1) > utility(access_lover, w0, a0));
  const double w2 = 0.6;
  const double a2 = 102;  // large quality loss, tiny access gain
  EXPECT_FALSE(utility_gain_condition(quality_lover, w0, a0, w2, a2));
  EXPECT_LT(utility(quality_lover, w2, a2), utility(quality_lover, w0, a0));
}

TEST(UserStudy, ChoicesSumToOne) {
  Rng rng(1);
  const auto bundles = usable_site_bundles();
  const auto shares = simulate_choices(rng, bundles);
  double total = 0;
  for (double s : shares) total += s;
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_EQ(shares.size(), bundles.size());
}

TEST(UserStudy, UsableSitesGiveBimodalChoices) {
  // Paper Fig. 4c: (1.5x,125) and (6x,600) chosen with ~0.32 and ~0.31.
  Rng rng(2);
  StudyOptions options;
  options.participants = 4000;  // big sample for a tight estimate
  const auto shares = simulate_choices(rng, usable_site_bundles(), options);
  EXPECT_NEAR(shares.front(), 0.32, 0.10);
  EXPECT_NEAR(shares.back(), 0.31, 0.10);
  // Ends dominate the middle (corner solutions of log-log utility).
  EXPECT_GT(shares.front(), shares[1] - 0.05);
  EXPECT_GT(shares.back(), shares[2] - 0.05);
}

TEST(UserStudy, FragileSitesConcentrateOnMildReduction) {
  Rng rng(3);
  StudyOptions options;
  options.participants = 4000;
  const auto shares = simulate_choices(rng, fragile_site_bundles(), options);
  // Paper: (1.5x,150) most popular, with a significant mass above 2.9x.
  EXPECT_EQ(std::max_element(shares.begin(), shares.end()) - shares.begin(), 0);
  EXPECT_GT(shares.back(), 0.1);
}

TEST(UserStudy, ZeroNoiseIsArgmax) {
  Rng rng(4);
  StudyOptions options;
  options.participants = 500;
  options.choice_noise = 0.0;
  const auto shares = simulate_choices(rng, usable_site_bundles(), options);
  // With hard argmax and log utility the corners dominate. Bundle 1 (2.9x)
  // can be an interior optimum — its accesses-per-reduction beat bundle 0's
  // (125/1.5 < 290/2.9) — but bundle 2 (4.4x) never is.
  EXPECT_LT(shares[2], 0.05);
  EXPECT_GT(shares.front() + shares.back(), 0.70);
}

TEST(UserStudy, UtilityGainFractionSubstantial) {
  // §4.1/4.2 headline: a significant fraction of users gains from trading
  // quality for access (1.5x reduction, 1.5x accesses).
  Rng rng(5);
  StudyOptions options;
  options.participants = 2000;
  const double frac = fraction_with_utility_gain(rng, options, 2.47, 100, 2.47 / 1.5, 150);
  EXPECT_GT(frac, 0.3);
  EXPECT_LT(frac, 0.8);
}

TEST(Ratings, LevelZeroForTinyReductions) {
  const PageShares shares{};
  EXPECT_EQ(required_optimization_level(shares, 1.05), OptimizationLevel::kLossless);
}

TEST(Ratings, LevelsEscalateWithReduction) {
  const PageShares shares{.images = 0.45, .js = 0.34, .external_js = 0.2};
  int prev = -1;
  for (double r : {1.1, 1.25, 1.5, 2.2, 3.0, 6.0, 20.0}) {
    const int level = static_cast<int>(required_optimization_level(shares, r));
    EXPECT_GE(level, prev) << "reduction " << r;
    prev = level;
  }
  EXPECT_EQ(required_optimization_level(shares, 20.0), OptimizationLevel::kUnusable);
}

TEST(Ratings, ImageHeavyPagesReachDeepReductionsUsable) {
  const PageShares image_heavy{.images = 0.70, .js = 0.15, .external_js = 0.10};
  const PageShares js_heavy{.images = 0.15, .js = 0.55, .external_js = 0.35};
  // 3x reduction: image-heavy pages manage with image removal (level <= 2+)..
  EXPECT_LE(static_cast<int>(required_optimization_level(image_heavy, 3.0)), 3);
  // ..JS-heavy pages need to go after scripts.
  EXPECT_GE(static_cast<int>(required_optimization_level(js_heavy, 3.0)), 3);
}

TEST(Ratings, UsableAtAllButLevelFive) {
  EXPECT_TRUE(usable_at(OptimizationLevel::kLossless));
  EXPECT_TRUE(usable_at(OptimizationLevel::kNoImagesExtJs));
  EXPECT_FALSE(usable_at(OptimizationLevel::kUnusable));
}

TEST(Ratings, DissimilarityMonotoneInQualityLoss) {
  EXPECT_DOUBLE_EQ(dissimilarity_rating(1.0), 0.0);
  EXPECT_GT(dissimilarity_rating(0.7), dissimilarity_rating(0.9));
  EXPECT_LE(dissimilarity_rating(0.0), 5.0);
  EXPECT_THROW((void)dissimilarity_rating(1.5), LogicError);
}

TEST(Ratings, NoiseStaysInScale) {
  Rng rng(6);
  for (int i = 0; i < 200; ++i) {
    const double r = dissimilarity_rating(0.5, &rng);
    EXPECT_GE(r, 0.0);
    EXPECT_LE(r, 5.0);
  }
}

class SampleUserTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SampleUserTest, WeightsInBoundsAndComplementary) {
  Rng rng(GetParam());
  const StudyOptions options;
  for (int i = 0; i < 100; ++i) {
    const UserParams u = sample_user(rng, options);
    EXPECT_GE(u.quality_weight, 0.05);
    EXPECT_LE(u.quality_weight, 0.95);
    EXPECT_NEAR(u.quality_weight + u.access_weight, 1.0, 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SampleUserTest, ::testing::Values(1ull, 2ull, 3ull));

}  // namespace
}  // namespace aw4a::econ
