// End-to-end flows across modules: the scenarios a website operator and a
// user actually run through AW4A.
#include <gtest/gtest.h>

#include "baselines/weblight.h"
#include "core/api.h"
#include "dataset/corpus.h"
#include "util/rng.h"

namespace aw4a {
namespace {

TEST(Integration, OperatorWorkflowCountryTiersAndServing) {
  // 1. An operator takes a page, 2. computes PAW-driven targets for two
  // countries, 3. pre-builds tiers, 4. serves users per their profiles.
  dataset::CorpusGenerator gen(dataset::CorpusOptions{.seed = 70, .rich = true});
  Rng rng(70);
  const web::WebPage page = gen.make_page(rng, from_mb(2.0), gen.global_profile());

  core::DeveloperConfig config;
  config.tier_reductions = {1.5, 3.0};
  config.measure_qfs = false;
  const core::Aw4aPipeline pipeline(config);
  const auto tiers = pipeline.build_tiers(page);
  ASSERT_EQ(tiers.size(), 2u);

  core::UserProfile constrained;
  constrained.data_saving_on = true;
  constrained.country_sharing_on = true;
  constrained.plan = net::PlanType::kDataVoiceLowUsage;
  constrained.country = dataset::find_country("Ethiopia");
  ASSERT_NE(constrained.country, nullptr);
  const auto d1 = core::decide_version(constrained, tiers);
  EXPECT_EQ(d1.kind, core::ServeDecision::Kind::kPawTier);

  core::UserProfile privacy_minded;
  privacy_minded.data_saving_on = true;
  privacy_minded.country_sharing_on = false;
  privacy_minded.preferred_savings_pct = 60.0;
  const auto d2 = core::decide_version(privacy_minded, tiers);
  EXPECT_EQ(d2.kind, core::ServeDecision::Kind::kPreferenceTier);

  core::UserProfile unconstrained;
  unconstrained.data_saving_on = false;
  EXPECT_EQ(core::decide_version(unconstrained, tiers).kind,
            core::ServeDecision::Kind::kOriginal);
}

TEST(Integration, PawReductionActuallyEqualizesAccesses) {
  // Reduce a failing country's pages by PAW with the real pipeline and check
  // the *measured* result restores the target access count.
  const dataset::Country* country = dataset::find_country("Lebanon");
  ASSERT_NE(country, nullptr);
  const double paw = core::paw_index(*country, net::PlanType::kDataVoiceLowUsage);
  ASSERT_GT(paw, 1.0);

  dataset::CorpusGenerator gen(dataset::CorpusOptions{.seed = 71, .rich = true});
  const auto pages = gen.country_pages(*country, 6);
  core::DeveloperConfig config;
  config.min_image_ssim = 0.8;
  config.measure_qfs = false;
  const core::Aw4aPipeline pipeline(config);

  double reduced_total = 0;
  double original_total = 0;
  for (const auto& page : pages) {
    const auto result =
        pipeline.transcode_for_country(page, *country, net::PlanType::kDataVoiceLowUsage);
    reduced_total += static_cast<double>(result.result_bytes);
    original_total += static_cast<double>(page.transfer_size());
  }
  // Achieved average reduction approaches PAW (some pages miss under the
  // quality constraint, so allow under-achievement but demand real movement).
  const double achieved = original_total / reduced_total;
  EXPECT_GT(achieved, 1.0 + (paw - 1.0) * 0.4);
}

TEST(Integration, Aw4aBeatsWebLightOnQualityAtComparableSize) {
  // The paper's central contrast: existing services hit extreme reductions
  // by destroying quality; AW4A maximizes quality at a byte budget.
  dataset::CorpusGenerator gen(dataset::CorpusOptions{.seed = 72, .rich = true});
  Rng rng(72);
  const web::WebPage page = gen.make_page(rng, from_mb(2.2), gen.global_profile());

  const auto weblight = baselines::weblight_transcode(page);
  const auto weblight_quality = core::evaluate_quality(weblight.served);

  core::DeveloperConfig config;
  config.min_image_ssim = 0.8;
  const core::Aw4aPipeline pipeline(config);
  const auto aw4a = pipeline.transcode_to_target(page, weblight.result_bytes);
  // At Web Light's own size, AW4A keeps (weakly) more quality; when the
  // quality constraint binds first, AW4A trades the last bytes for quality.
  if (aw4a.met_target) {
    EXPECT_GE(aw4a.quality.quality + 1e-9, weblight_quality.quality);
  } else {
    EXPECT_GT(aw4a.quality.quality, weblight_quality.quality);
  }
}

TEST(Integration, CacheAndTranscodingCompose) {
  // Transcoded pages also cache; the cached cost of a reduced page is below
  // the cached cost of the original.
  dataset::CorpusGenerator gen(dataset::CorpusOptions{.seed = 73, .rich = true});
  Rng rng(73);
  const web::WebPage page = gen.make_page(rng, from_mb(1.8), gen.global_profile());
  core::DeveloperConfig config;
  config.measure_qfs = false;
  const core::Aw4aPipeline pipeline(config);
  const auto result = pipeline.transcode_to_target(page, page.transfer_size() * 2 / 3);

  const net::VisitSchedule schedule{};
  auto cached_cost = [&](auto size_of_object) {
    std::vector<net::CacheItem> items;
    for (const auto& o : page.objects) {
      net::CacheItem item = web::to_cache_item(o);
      item.transfer_bytes = size_of_object(o);
      items.push_back(item);
    }
    return net::simulate_infinite_cache(items, schedule).avg_bytes_per_visit;
  };
  const double cached_original =
      cached_cost([](const web::WebObject& o) { return o.transfer_bytes; });
  const double cached_reduced = cached_cost(
      [&](const web::WebObject& o) { return result.served.object_transfer(o); });
  EXPECT_LT(cached_reduced, cached_original);
}

TEST(Integration, DeterministicEndToEnd) {
  // The same seed reproduces identical transcoding decisions and bytes.
  auto run = [] {
    dataset::CorpusGenerator gen(dataset::CorpusOptions{.seed = 74, .rich = true});
    Rng rng(74);
    const web::WebPage page = gen.make_page(rng, from_mb(1.5), gen.global_profile());
    core::DeveloperConfig config;
    config.measure_qfs = false;
    const core::Aw4aPipeline pipeline(config);
    return pipeline.transcode_to_target(page, page.transfer_size() * 7 / 10).result_bytes;
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace aw4a
