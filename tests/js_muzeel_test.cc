#include "js/muzeel.h"

#include <gtest/gtest.h>

#include "js/callgraph.h"
#include "util/rng.h"

namespace aw4a::js {
namespace {

// A hand-built script with a known structure:
//   f1 (init, draws widget 100) -> f2
//   f3 (click handler)          -> f4 (draws widget 200)
//   f5 dead, f6 dead (calls f5)
//   f3 --dynamic--> f7 (draws widget 300): invisible to static analysis
Script fixture() {
  Script s;
  s.id = 1;
  auto add = [&](FunctionId id, Bytes bytes, std::vector<FunctionId> callees,
                 std::vector<FunctionId> dyn, WidgetId w) {
    JsFunction f;
    f.id = id;
    f.bytes = bytes;
    f.callees = std::move(callees);
    f.dynamic_callees = std::move(dyn);
    f.visual_widget = w;
    s.functions.push_back(std::move(f));
  };
  add(1, 1000, {2}, {}, 100);
  add(2, 500, {}, {}, 0);
  add(3, 800, {4}, {7}, 0);
  add(4, 700, {}, {}, 200);
  add(5, 900, {}, {}, 0);
  add(6, 600, {5}, {}, 0);
  add(7, 400, {}, {}, 300);
  s.init_functions = {1};
  s.bindings = {{EventKind::kClick, 3}};
  return s;
}

TEST(Muzeel, KeepsStaticallyReachableOnly) {
  const MuzeelResult r = muzeel_eliminate(fixture());
  EXPECT_EQ(r.kept, (std::set<FunctionId>{1, 2, 3, 4}));
  EXPECT_EQ(r.reduced.functions.size(), 4u);
  EXPECT_EQ(r.removed_bytes, 900u + 600u + 400u);
}

TEST(Muzeel, FlagsDynamicallyReachableRemovalsAsBroken) {
  const MuzeelResult r = muzeel_eliminate(fixture());
  // f7 is runtime-reachable via the dynamic edge from f3 but was removed.
  EXPECT_EQ(r.broken, (std::set<FunctionId>{7}));
}

TEST(Muzeel, ReducedScriptPreservesBindingsAndIds) {
  const Script original = fixture();
  const MuzeelResult r = muzeel_eliminate(original);
  EXPECT_EQ(r.reduced.id, original.id);
  EXPECT_EQ(r.reduced.bindings.size(), original.bindings.size());
  EXPECT_NE(r.reduced.find(3), nullptr);
  EXPECT_EQ(r.reduced.find(5), nullptr);
}

TEST(Muzeel, IdempotentOnCleanScripts) {
  const MuzeelResult first = muzeel_eliminate(fixture());
  const MuzeelResult second = muzeel_eliminate(first.reduced);
  EXPECT_EQ(second.removed_bytes, 0u);
  EXPECT_EQ(second.reduced.functions.size(), first.reduced.functions.size());
}

TEST(Muzeel, BrokenWidgetsReflectLiveSet) {
  const Script s = fixture();
  // Serve everything: nothing broken.
  std::set<FunctionId> all;
  for (const auto& f : s.functions) all.insert(f.id);
  EXPECT_TRUE(broken_widgets(s, all).empty());
  // Remove f7: its widget 300 is runtime-reachable but unserved.
  std::set<FunctionId> without7 = all;
  without7.erase(7);
  EXPECT_EQ(broken_widgets(s, without7), (std::set<WidgetId>{300}));
  // Removing the dead f5/f6 breaks nothing.
  std::set<FunctionId> without_dead = all;
  without_dead.erase(5);
  without_dead.erase(6);
  EXPECT_TRUE(broken_widgets(s, without_dead).empty());
}

TEST(Muzeel, SyntheticScriptsShrinkAndMostlyDontBreak) {
  int broken_scripts = 0;
  Bytes total_before = 0;
  Bytes total_after = 0;
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    Rng rng(seed);
    ScriptSynthOptions options;
    options.target_bytes = 60 * kKB;
    const Script s = synth_script(rng, options);
    const MuzeelResult r = muzeel_eliminate(s);
    total_before += s.total_bytes();
    total_after += r.reduced.total_bytes();
    if (!r.broken.empty()) ++broken_scripts;
  }
  // Dead-code elimination removes a substantial share (dead_fraction ~0.45)..
  EXPECT_LT(total_after, total_before * 4 / 5);
  // ..and dynamic-dispatch breakage is the exception, not the rule.
  EXPECT_LT(broken_scripts, 12);
}

}  // namespace
}  // namespace aw4a::js
