// Overload behavior of the build plane, written to run clean under
// ThreadSanitizer (tools/tier1.sh builds it with -DAW4A_SANITIZE=thread).
//
// The contracts when demand exceeds build capacity:
//   - the BuildQueue never holds more than its bound, no matter how many
//     threads storm admission at once;
//   - every shed request still gets a 200 degraded answer with the shed
//     contract headers (AW4A-Tier: none, AW4A-Degraded, Retry-After) —
//     overload NEVER surfaces as a 5xx or an internal error;
//   - counters partition exactly: admissions into completed/failed/expired,
//     page answers into original/paw/preference/degraded/shed_degraded, and
//     tier answers into cached/stale/built ladder sources;
//   - a queued job whose deadline lapses before a worker frees up is
//     dropped, not built (pinned with an injected clock — no sleeping).
// Queue-level tests use fake builds so the schedule churns; the origin
// tests run real pipeline builds end to end.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "dataset/corpus.h"
#include "serving/build_queue.h"
#include "serving/origin.h"
#include "util/error.h"
#include "util/fault.h"
#include "util/rng.h"

namespace aw4a::serving {
namespace {

LadderPtr fake_ladder() {
  auto ladder = std::make_shared<TierLadder>();
  ladder->tiers.resize(1);
  ladder->cost_bytes = 1000;
  return ladder;
}

class BuildQueueOverloadTest : public ::testing::Test {
 protected:
  void SetUp() override { fault::reset(); }
  void TearDown() override { fault::reset(); }
};

TEST_F(BuildQueueOverloadTest, BoundNeverExceededAndCountersPartition) {
  constexpr std::size_t kCapacity = 4;
  constexpr int kCallers = 32;
  BuildQueue queue(BuildQueueOptions{.capacity = kCapacity, .workers = 2, .clock = {}});

  std::atomic<bool> release{false};
  std::atomic<int> finished{0};
  std::atomic<int> got_ladder{0};
  std::atomic<int> got_overloaded{0};
  const auto build = [&]() -> LadderPtr {
    // Hold the workers until the storm has fully arrived, so the queue
    // actually fills and admission actually sheds.
    while (!release.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return fake_ladder();
  };

  std::vector<std::thread> callers;
  for (int i = 0; i < kCallers; ++i) {
    callers.emplace_back([&, i] {
      try {
        const LadderPtr ladder =
            queue.run(static_cast<std::uint64_t>(i), obs::RequestContext::none(), build);
        if (ladder != nullptr) got_ladder.fetch_add(1);
      } catch (const Overloaded&) {
        got_overloaded.fetch_add(1);
      }
      finished.fetch_add(1);
    });
  }

  // Sample the bound from this thread while the storm is in flight, and
  // release the workers once every caller has passed admission.
  std::size_t max_depth = 0;
  while (finished.load() < kCallers) {
    max_depth = std::max(max_depth, queue.depth());
    const BuildQueueStats s = queue.stats();
    if (s.admitted + s.shed >= static_cast<std::uint64_t>(kCallers)) {
      release.store(true, std::memory_order_release);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  for (auto& caller : callers) caller.join();

  EXPECT_LE(max_depth, kCapacity) << "queue depth must never exceed its bound";
  const BuildQueueStats s = queue.stats();
  EXPECT_EQ(s.admitted + s.shed, static_cast<std::uint64_t>(kCallers))
      << "every caller was admitted or shed, exactly once";
  EXPECT_EQ(s.completed + s.failed + s.expired, s.admitted)
      << "every admitted job was resolved, exactly once";
  EXPECT_EQ(s.depth, 0u);
  EXPECT_EQ(s.running, 0u);
  EXPECT_EQ(got_ladder.load(), static_cast<int>(s.completed));
  EXPECT_EQ(got_overloaded.load(), static_cast<int>(s.shed));
  EXPECT_GT(s.shed, 0u) << "32 callers against capacity 4 + 2 workers must shed";
  EXPECT_EQ(s.queue_wait_seconds.count, s.completed)
      << "one queue-wait sample per build that ran";
}

TEST_F(BuildQueueOverloadTest, ExpiredQueuedJobIsDroppedNotBuilt) {
  std::atomic<double> now{0.0};
  const auto clock = [&now] { return now.load(); };
  BuildQueue queue(BuildQueueOptions{.capacity = 4, .workers = 1, .clock = clock});
  const obs::RequestContext base = obs::RequestContext().with_clock(clock);

  // Job A occupies the only worker until released.
  std::atomic<bool> release{false};
  std::atomic<int> b_builds{0};
  std::thread a_caller([&] {
    const LadderPtr ladder = queue.run(0, base, [&]() -> LadderPtr {
      while (!release.load(std::memory_order_acquire)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      return fake_ladder();
    });
    EXPECT_NE(ladder, nullptr);
  });
  while (queue.stats().running == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // Job B is admitted with 10s of budget, then loses all of it while
  // waiting: its waiter must get DeadlineExceeded and its build never runs.
  std::thread b_caller([&] {
    EXPECT_THROW(queue.run(0, base.with_deadline_after(10.0),
                           [&]() -> LadderPtr {
                             b_builds.fetch_add(1);
                             return fake_ladder();
                           }),
                 DeadlineExceeded);
  });
  while (queue.stats().admitted < 2) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  now.store(100.0);
  b_caller.join();
  release.store(true, std::memory_order_release);
  a_caller.join();

  EXPECT_EQ(b_builds.load(), 0) << "an expired queued job must not waste the worker";
  const BuildQueueStats s = queue.stats();
  EXPECT_EQ(s.expired, 1u);
  EXPECT_EQ(s.completed, 1u);

  // The anytime contract survives: a job admitted with its deadline ALREADY
  // expired keeps its pre-queue semantics (cheap Stage-1 build), it is not
  // dropped.
  std::atomic<int> born_expired_builds{0};
  const LadderPtr anytime = queue.run(0, base.with_deadline_after(0.0), [&]() -> LadderPtr {
    born_expired_builds.fetch_add(1);
    return fake_ladder();
  });
  EXPECT_NE(anytime, nullptr);
  EXPECT_EQ(born_expired_builds.load(), 1);
  EXPECT_EQ(queue.stats().expired, 1u) << "born-expired jobs are built, not dropped";
}

TEST_F(BuildQueueOverloadTest, DetachedSubmitCompletesOrShedsCleanly) {
  BuildQueue queue(BuildQueueOptions{.capacity = 2, .workers = 1, .clock = {}});
  std::atomic<int> done_calls{0};
  std::atomic<bool> got_result{false};
  ASSERT_TRUE(queue.submit_detached(
      1, obs::RequestContext::none(), [] { return fake_ladder(); },
      [&](LadderPtr built) {
        got_result.store(built != nullptr);
        done_calls.fetch_add(1);
      }));
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (done_calls.load() == 0 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(done_calls.load(), 1);
  EXPECT_TRUE(got_result.load());

  // The enqueue fault sheds a detached submit the same way: false, no
  // crash, no callback.
  fault::configure("serving.build.queue", {.probability = 1.0});
  EXPECT_FALSE(queue.submit_detached(
      1, obs::RequestContext::none(), [] { return fake_ladder(); },
      [&](LadderPtr) { done_calls.fetch_add(1); }));
  fault::reset();
  EXPECT_EQ(done_calls.load(), 1) << "a shed submit must not invoke its callback";
  EXPECT_EQ(queue.stats().shed, 1u);
}

// ---------------------------------------------------------------------------
// OriginServer under overload (real pipeline builds)
// ---------------------------------------------------------------------------

class OriginOverloadTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dataset::CorpusGenerator gen(dataset::CorpusOptions{.seed = 47, .rich = true});
    Rng rng(47);
    pages_ = new std::vector<web::WebPage>;
    for (int i = 0; i < 3; ++i) {
      pages_->push_back(gen.make_page(rng, 200 * kKB, gen.global_profile()));
    }
  }
  static void TearDownTestSuite() {
    delete pages_;
    pages_ = nullptr;
  }
  void SetUp() override { fault::reset(); }
  void TearDown() override { fault::reset(); }

  static std::vector<OriginSite> sites() {
    core::DeveloperConfig config;
    config.tier_reductions = {2.0};
    config.min_image_ssim = 0.8;
    config.measure_qfs = false;
    std::vector<OriginSite> out;
    for (std::size_t i = 0; i < pages_->size(); ++i) {
      out.push_back(OriginSite{"site-" + std::to_string(i) + ".example", (*pages_)[i], config,
                               net::PlanType::kDataVoiceLowUsage});
    }
    return out;
  }

  static net::HttpRequest saver(std::size_t site) {
    net::HttpRequest request;
    request.headers = {{"Host", "site-" + std::to_string(site) + ".example"},
                       {"Save-Data", "on"},
                       {"X-Geo-Country", "ET"}};
    return request;
  }

  static std::vector<web::WebPage>* pages_;
};

std::vector<web::WebPage>* OriginOverloadTest::pages_ = nullptr;

TEST_F(OriginOverloadTest, EveryShedRequestGetsA200DegradedAnswer) {
  // Capacity 0: admission always sheds, so every save-data request takes
  // the shed fast path. The contract: 200, the degraded original, the shed
  // headers — and zero internal errors, under concurrency.
  OriginOptions options;
  options.build_queue.capacity = 0;
  options.build_queue.workers = 1;
  const OriginServer origin(sites(), options);

  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kRequests = 25;
  std::atomic<std::uint64_t> violations{0};
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (std::size_t i = 0; i < kRequests; ++i) {
        const auto response = origin.handle(saver((t + i) % 3));
        const bool ok = response.status == 200 &&
                        response.header("AW4A-Tier") != nullptr &&
                        *response.header("AW4A-Tier") == "none" &&
                        response.header("AW4A-Degraded") != nullptr &&
                        response.header("Retry-After") != nullptr &&
                        response.content_length > 0;
        if (!ok) violations.fetch_add(1);
      }
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(violations.load(), 0u) << "every shed answer must be a complete degraded 200";
  const MetricsSnapshot m = origin.metrics();
  EXPECT_EQ(m.requests_total, kThreads * kRequests);
  EXPECT_EQ(m.served_shed_degraded, kThreads * kRequests);
  EXPECT_EQ(m.served_degraded, 0u);
  EXPECT_EQ(m.internal_errors, 0u);
  EXPECT_EQ(m.builds_started, 0u) << "shedding must cost zero build work";
  EXPECT_EQ(origin.build_queue_stats().shed, origin.single_flight_stats().leads)
      << "one shed per flight; joiners shed with their leader";
}

TEST_F(OriginOverloadTest, CountersPartitionUnderOverloadWithInvalidation) {
  // A tight build plane (capacity 1, one worker) under a concurrent storm,
  // with a mid-run invalidation for stale-while-revalidate churn: every
  // answer must land in exactly one bucket and the buckets must add up.
  OriginOptions options;
  options.build_queue.capacity = 1;
  options.build_queue.workers = 1;
  const OriginServer origin(sites(), options);

  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kRequests = 30;
  std::atomic<std::uint64_t> non_200{0};
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (std::size_t i = 0; i < kRequests; ++i) {
        if (t == 0 && i == kRequests / 2) {
          const_cast<OriginServer&>(origin).invalidate_host("site-0.example");
        }
        if (origin.handle(saver((t + i) % 3)).status != 200) non_200.fetch_add(1);
      }
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(non_200.load(), 0u) << "overload must never produce a non-200 page answer";
  const MetricsSnapshot m = origin.metrics();
  EXPECT_EQ(m.internal_errors, 0u);
  EXPECT_EQ(m.requests_total, kThreads * kRequests);
  // Partition 1: every save-data answer is a tier, a degraded original, or
  // a shed degraded original.
  EXPECT_EQ(m.served_paw_tier + m.served_preference_tier + m.served_degraded +
                m.served_shed_degraded + m.served_original,
            m.requests_total);
  // Partition 2: every tier answer names its ladder source.
  EXPECT_EQ(m.served_paw_tier + m.served_preference_tier,
            m.ladder_cached + m.ladder_stale + m.ladder_built);
  // Partition 3: the queue resolved everything it admitted (after drain —
  // the origin is idle once all request threads joined, but a detached
  // refresh may still be settling).
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  BuildQueueStats q = origin.build_queue_stats();
  while (q.completed + q.failed + q.expired < q.admitted &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    q = origin.build_queue_stats();
  }
  EXPECT_EQ(q.completed + q.failed + q.expired, q.admitted);
  EXPECT_EQ(q.depth, 0u);
}

}  // namespace
}  // namespace aw4a::serving
