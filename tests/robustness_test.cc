// Fault-injection and graceful-degradation coverage: the substrate every
// perf PR uses to prove crash-freedom under failure.
//
//   - the fault framework itself (deterministic triggers, spec parsing),
//   - retry_transient and the error-context chain,
//   - parallel_for failure aggregation,
//   - the pipeline's deadline/fallback ladder,
//   - a sweep forcing every registered fault point to fire 100% of the time
//     while the TranscodingServer answers the four transcoding_server.cpp
//     scenarios — construction and handle() must never throw, responses must
//     stay well-formed on the wire, and the degradation path must be
//     byte-identical across two runs with the same seed.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>

#include "core/knapsack.h"
#include "core/server.h"
#include "dataset/corpus.h"
#include "obs/context.h"
#include "serving/origin.h"
#include "util/fault.h"
#include "util/parallel.h"
#include "util/retry.h"
#include "util/rng.h"

namespace aw4a {
namespace {

// Every test starts and ends with a disarmed registry (tests in one binary
// share the process-wide fault state).
class FaultTest : public ::testing::Test {
 protected:
  void SetUp() override { fault::reset(); }
  void TearDown() override { fault::reset(); }
};

TEST_F(FaultTest, DisarmedPointIsFree) {
  for (int i = 0; i < 100; ++i) {
    AW4A_FAULT_POINT("test.unit.disarmed");
  }
  EXPECT_EQ(fault::fire_count("test.unit.disarmed"), 0u);
}

TEST_F(FaultTest, ProbabilityOneAlwaysFires) {
  fault::configure("test.unit.always", {.probability = 1.0});
  for (int i = 0; i < 5; ++i) {
    EXPECT_THROW(AW4A_FAULT_POINT("test.unit.always"), fault::InjectedFault);
  }
  EXPECT_EQ(fault::fire_count("test.unit.always"), 5u);
}

TEST_F(FaultTest, InjectedFaultIsTransient) {
  fault::configure("test.unit.transient", {.probability = 1.0});
  EXPECT_THROW(AW4A_FAULT_POINT("test.unit.transient"), TransientError);
}

TEST_F(FaultTest, EveryNthFiresOnSchedule) {
  fault::configure("test.unit.nth", {.every_nth = 3});
  int fired = 0;
  for (int hit = 1; hit <= 9; ++hit) {
    try {
      AW4A_FAULT_POINT("test.unit.nth");
    } catch (const fault::InjectedFault&) {
      ++fired;
      EXPECT_EQ(hit % 3, 0) << "fired off schedule at hit " << hit;
    }
  }
  EXPECT_EQ(fired, 3);
}

TEST_F(FaultTest, MaxFiresExhausts) {
  fault::configure("test.unit.capped", {.probability = 1.0, .max_fires = 2});
  int fired = 0;
  for (int i = 0; i < 6; ++i) {
    try {
      AW4A_FAULT_POINT("test.unit.capped");
    } catch (const fault::InjectedFault&) {
      ++fired;
    }
  }
  EXPECT_EQ(fired, 2);
}

TEST_F(FaultTest, ProbabilityPatternIsSeedDeterministic) {
  auto pattern = [] {
    std::vector<bool> fires;
    for (int i = 0; i < 200; ++i) {
      try {
        AW4A_FAULT_POINT("test.unit.coin");
        fires.push_back(false);
      } catch (const fault::InjectedFault&) {
        fires.push_back(true);
      }
    }
    return fires;
  };
  fault::set_seed(42);
  fault::configure("test.unit.coin", {.probability = 0.5});
  const auto first = pattern();
  fault::set_seed(42);
  fault::configure("test.unit.coin", {.probability = 0.5});
  const auto second = pattern();
  EXPECT_EQ(first, second);

  fault::set_seed(43);
  fault::configure("test.unit.coin", {.probability = 0.5});
  EXPECT_NE(first, pattern()) << "different seed should reshuffle the pattern";

  const int fires = static_cast<int>(std::count(first.begin(), first.end(), true));
  EXPECT_GT(fires, 60);  // ~100 expected; loose bounds, the point is determinism
  EXPECT_LT(fires, 140);
}

TEST_F(FaultTest, ConfigureFromString) {
  std::string error;
  EXPECT_TRUE(fault::configure_from_string(
      "codec.jpeg.encode:0.25,js.muzeel.eliminate:every=7,seed=9,test.unit.once:once",
      &error))
      << error;
  bool saw_jpeg = false, saw_muzeel = false, saw_once = false;
  for (const auto& point : fault::stats()) {
    if (point.name == "codec.jpeg.encode") {
      saw_jpeg = true;
      EXPECT_DOUBLE_EQ(point.spec.probability, 0.25);
    }
    if (point.name == "js.muzeel.eliminate") {
      saw_muzeel = true;
      EXPECT_EQ(point.spec.every_nth, 7u);
    }
    if (point.name == "test.unit.once") {
      saw_once = true;
      EXPECT_EQ(point.spec.max_fires, 1u);
    }
  }
  EXPECT_TRUE(saw_jpeg && saw_muzeel && saw_once);

  EXPECT_FALSE(fault::configure_from_string("no-colon-here", &error));
  EXPECT_FALSE(fault::configure_from_string("p:1.5", &error));      // prob > 1
  EXPECT_FALSE(fault::configure_from_string("p:every=0", &error));  // zero period
  EXPECT_FALSE(fault::configure_from_string("seed=xyz", &error));
}

TEST_F(FaultTest, KnownPointsIncludeProductionRegistrations) {
  const auto points = fault::known_points();
  for (const char* expected :
       {"codec.jpeg.encode", "codec.png.encode", "codec.webp.encode",
        "js.muzeel.eliminate", "dataset.corpus.make_page", "net.compress.gzip",
        "solver.grid_search", "solver.hbs", "solver.knapsack",
        "serving.build.leader", "serving.cache.shard", "serving.build.queue"}) {
    EXPECT_NE(std::find(points.begin(), points.end(), expected), points.end())
        << "missing " << expected;
  }
}

TEST(Retry, SucceedsAfterTransientFailures) {
  int calls = 0;
  std::vector<double> backoffs;
  const int result = retry_transient(
      [&] {
        if (++calls < 3) throw TransientError("flaky");
        return 7;
      },
      RetryOptions{.max_attempts = 3}, &backoffs);
  EXPECT_EQ(result, 7);
  EXPECT_EQ(calls, 3);
  ASSERT_EQ(backoffs.size(), 2u);
  EXPECT_DOUBLE_EQ(backoffs[0], 0.05);
  EXPECT_DOUBLE_EQ(backoffs[1], 0.10);
}

TEST(Retry, NonTransientErrorsPropagateImmediately) {
  int calls = 0;
  EXPECT_THROW(retry_transient([&]() -> int {
                 ++calls;
                 throw Infeasible("cannot be retried away");
               }),
               Infeasible);
  EXPECT_EQ(calls, 1);
  calls = 0;
  EXPECT_THROW(retry_transient([&]() -> int {
                 ++calls;
                 throw DeadlineExceeded("the clock will not come back");
               }),
               DeadlineExceeded);
  EXPECT_EQ(calls, 1);
}

TEST(Retry, ExhaustionRethrowsWithAttemptContext) {
  try {
    retry_transient([]() -> int { throw TransientError("still down"); },
                    RetryOptions{.max_attempts = 4});
    FAIL() << "should have thrown";
  } catch (const TransientError& e) {
    EXPECT_NE(std::string(e.what()).find("after 4 attempts"), std::string::npos) << e.what();
    EXPECT_NE(std::string(e.what()).find("still down"), std::string::npos);
  }
}

TEST(ErrorContext, ChainPreservesTypeAndAccumulates) {
  try {
    with_context("tier 3.00x", [] {
      with_context("image 17", []() -> int { throw Infeasible("target below floor"); });
      return 0;
    });
    FAIL() << "should have thrown";
  } catch (const Infeasible& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("tier 3.00x"), std::string::npos) << what;
    EXPECT_NE(what.find("image 17"), std::string::npos);
    EXPECT_NE(what.find("target below floor"), std::string::npos);
    EXPECT_LT(what.find("tier 3.00x"), what.find("image 17")) << "outermost frame first";
  }
}

TEST(ParallelFor, SingleFailurePreservesExceptionType) {
  EXPECT_THROW(parallel_for(8,
                            [](std::size_t i) {
                              if (i == 3) throw Infeasible("only one item fails");
                            }),
               Infeasible);
}

TEST(ParallelFor, ConcurrentFailuresAggregateIntoOneReport) {
  // Worker count pinned per call (there is no process-wide override any
  // more) so multi-worker failure paths run even on single-core machines.
  const std::size_t workers = 4;
  // count == workers, and every body blocks until all have started, so every
  // worker is guaranteed to be mid-body (not yet cancelled) when it throws.
  std::atomic<std::size_t> entered{0};
  try {
    parallel_for(
        workers,
        [&](std::size_t i) {
          entered.fetch_add(1);
          while (entered.load() < workers) std::this_thread::yield();
          throw Error("worker " + std::to_string(i) + " failed");
        },
        static_cast<unsigned>(workers));
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("parallel work items failed"), std::string::npos) << what;
    for (std::size_t i = 0; i < workers; ++i) {
      EXPECT_NE(what.find("worker " + std::to_string(i) + " failed"), std::string::npos)
          << "missing worker " << i << " in: " << what;
    }
  }
}

TEST(ParallelFor, FailureCancelsUnclaimedWork) {
  constexpr unsigned kWorkers = 4;
  std::atomic<std::size_t> executed{0};
  try {
    parallel_for(
        10000,
        [&](std::size_t) {
          executed.fetch_add(1);
          throw Error("boom");
        },
        kWorkers);
    FAIL() << "should have thrown";
  } catch (const Error&) {
  }
  // Each worker runs at most one body after the first failure lands.
  EXPECT_LE(executed.load(), static_cast<std::size_t>(kWorkers));
}

// ---------------------------------------------------------------------------
// Pipeline + server degradation
// ---------------------------------------------------------------------------

class DegradationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    fault::reset();
    dataset::CorpusGenerator gen(dataset::CorpusOptions{.seed = 7, .rich = true});
    Rng rng(7);
    page_ = new web::WebPage(gen.make_page(rng, 600 * kKB, gen.global_profile()));
  }
  static void TearDownTestSuite() {
    delete page_;
    page_ = nullptr;
  }
  void SetUp() override { fault::reset(); }
  void TearDown() override { fault::reset(); }

  static core::DeveloperConfig config() {
    core::DeveloperConfig config;
    config.tier_reductions = {2.0, 4.0};
    config.min_image_ssim = 0.8;
    config.measure_qfs = false;
    return config;
  }

  // The four scenarios of examples/transcoding_server.cpp, over the wire.
  static std::vector<net::HttpRequest> scenarios() {
    auto get = [](std::initializer_list<net::HttpHeader> headers) {
      net::HttpRequest r;
      r.headers = headers;
      return r;
    };
    return {get({}),
            get({{"Save-Data", "on"}, {"X-Geo-Country", "ET"}}),
            get({{"Save-Data", "on"}, {"X-Geo-Country", "DE"}}),
            get({{"Save-Data", "on"}, {"AW4A-Savings", "70"}})};
  }

  static web::WebPage* page_;
};

web::WebPage* DegradationTest::page_ = nullptr;

TEST_F(DegradationTest, ExhaustedDeadlineServesStage1Result) {
  core::DeveloperConfig deadline_config = config();
  deadline_config.stage2_deadline_seconds = 0.0;  // exhausted before Stage-2
  const core::Aw4aPipeline pipeline(deadline_config);
  core::TranscodeResult result;
  ASSERT_NO_THROW(result = pipeline.transcode_to_target(*page_, page_->transfer_size() / 4));
  EXPECT_TRUE(result.degraded);
  EXPECT_EQ(result.algorithm, "stage1(degraded)");
  EXPECT_NE(result.degradation_reason.find("deadline"), std::string::npos);
  EXPECT_GT(result.result_bytes, 0u);
  EXPECT_LE(result.result_bytes, page_->transfer_size());
  // Stage-1 alone cannot reach a 4x cut on this page; the point is that the
  // anytime result is served rather than DeadlineExceeded thrown.
  EXPECT_FALSE(result.met_target);
}

TEST_F(DegradationTest, GenerousDeadlineStillRunsStage2) {
  core::DeveloperConfig deadline_config = config();
  deadline_config.stage2_deadline_seconds = 3600.0;
  const auto result = core::Aw4aPipeline(deadline_config)
                          .transcode_to_target(*page_, page_->transfer_size() / 4);
  EXPECT_FALSE(result.degraded);
  EXPECT_NE(result.algorithm.find("hbs"), std::string::npos) << result.algorithm;
}

TEST_F(DegradationTest, DeadlineFiringAnywhereNeverEscapesThePipeline) {
  // Drive the context on a counting clock that jumps past the deadline after
  // N reads, so expiry lands at a different point in the pipeline on every
  // iteration — during Stage-1, between stages, inside either Stage-2 solver.
  // Wherever it fires, transcode_to_target must return an anytime result
  // (degraded or not) rather than let DeadlineExceeded escape.
  for (const auto stage2 :
       {core::DeveloperConfig::Stage2::kHbs, core::DeveloperConfig::Stage2::kGridSearch}) {
    for (const int flip_after : {1, 3, 10, 100, 1000}) {
      SCOPED_TRACE("solver " + std::to_string(static_cast<int>(stage2)) + ", clock flips after " +
                   std::to_string(flip_after) + " reads");
      core::DeveloperConfig cfg = config();
      cfg.stage2 = stage2;
      const core::Aw4aPipeline pipeline(cfg);
      int reads = 0;
      const obs::RequestContext ctx =
          obs::RequestContext()
              .with_clock([&reads, flip_after] { return ++reads > flip_after ? 1.0e9 : 0.0; })
              .with_deadline_after(1.0);
      core::TranscodeResult result;
      ASSERT_NO_THROW(
          result = pipeline.transcode_to_target(*page_, page_->transfer_size() / 4, ctx));
      EXPECT_GT(result.result_bytes, 0u);
      EXPECT_LE(result.result_bytes, page_->transfer_size());
      if (result.degraded) {
        EXPECT_EQ(result.algorithm, "stage1(degraded)");
      }
    }
  }
}

TEST_F(DegradationTest, CancellationDegradesLikeADeadline) {
  std::atomic<bool> cancelled{true};
  const obs::RequestContext ctx = obs::RequestContext().with_cancel(&cancelled);
  core::TranscodeResult result;
  ASSERT_NO_THROW(result = core::Aw4aPipeline(config()).transcode_to_target(
                      *page_, page_->transfer_size() / 4, ctx));
  EXPECT_TRUE(result.degraded);
  EXPECT_EQ(result.algorithm, "stage1(degraded)");
  EXPECT_NE(result.degradation_reason.find("cancelled"), std::string::npos)
      << result.degradation_reason;
}

TEST_F(DegradationTest, OneExpiredContextDegradesEveryTierInTheBuild) {
  // build_tiers under an explicit context shares ONE deadline across the
  // whole build: born expired, every tier serves its Stage-1 anytime result
  // and the build as a whole still succeeds.
  const core::Aw4aPipeline pipeline(config());
  const obs::RequestContext ctx = obs::RequestContext().with_deadline_after(0.0);
  std::vector<core::Tier> tiers;
  ASSERT_NO_THROW(tiers = pipeline.build_tiers(*page_, ctx));
  ASSERT_EQ(tiers.size(), 2u);
  for (const auto& tier : tiers) {
    EXPECT_TRUE(tier.built);
    EXPECT_TRUE(tier.result.degraded);
    EXPECT_EQ(tier.result.algorithm, "stage1(degraded)");
  }
}

TEST_F(DegradationTest, KnapsackUnderExpiredDeadlineInstallsTheFeasibilityFloor) {
  // Warm the candidate set with an unconstrained exact solve, then re-solve
  // under an exhausted budget: the DP polls per image layer and must install
  // the byte-minimal feasible assignment — never throw, never beat the exact
  // optimum's quality score.
  const web::WebPage& page = *page_;
  const Bytes target = page.transfer_size() / 2;
  core::LadderCache ladders;

  web::ServedPage exact_served = web::serve_original(page);
  const auto exact = core::knapsack_optimize(exact_served, target, ladders);

  web::ServedPage rushed_served = web::serve_original(page);
  const obs::RequestContext expired = obs::RequestContext().with_deadline_after(0.0);
  core::KnapsackOutcome rushed;
  ASSERT_NO_THROW(
      rushed = core::knapsack_optimize(rushed_served, target, ladders, {}, expired));
  EXPECT_EQ(rushed.cells, 0u) << "the DP must not run on an exhausted budget";
  if (exact.met_target) {
    EXPECT_TRUE(rushed.met_target) << "the floor is feasible whenever the optimum is";
  }
  EXPECT_LE(rushed.bytes_after, exact.bytes_after);
  EXPECT_LE(rushed.qss, exact.qss + 1e-12);
}

TEST_F(DegradationTest, Stage2FaultFallsBackToStage1PerTier) {
  fault::configure("solver.hbs", {.probability = 1.0});
  const auto tiers = core::Aw4aPipeline(config()).build_tiers(*page_);
  ASSERT_EQ(tiers.size(), 2u);
  for (const auto& tier : tiers) {
    EXPECT_TRUE(tier.built);
    EXPECT_TRUE(tier.result.degraded);
    EXPECT_EQ(tier.result.algorithm, "stage1(degraded)");
    EXPECT_NE(tier.note.find("injected fault"), std::string::npos) << tier.note;
  }
}

TEST_F(DegradationTest, RetryAbsorbsASingleTransientCodecFault) {
  // One codec fire, then clean: the codec-site retry absorbs it invisibly —
  // no tier degrades, no tier fails.
  fault::configure("codec.webp.encode", {.probability = 1.0, .max_fires = 1});
  const auto tiers = core::Aw4aPipeline(config()).build_tiers(*page_);
  EXPECT_EQ(fault::fire_count("codec.webp.encode"), 1u);
  for (const auto& tier : tiers) {
    EXPECT_TRUE(tier.built);
    EXPECT_FALSE(tier.result.degraded) << tier.note;
  }
}

TEST_F(DegradationTest, FailedTierBorrowsNearestBuiltTier) {
  // With the shared cross-tier ladder cache, a tier after the first performs
  // no fresh encodes, so a fault cannot fail a *later* tier. Instead: measure
  // how many webp-encode fires it takes to fail one tier outright (through
  // the codec-site retry and the tier-level retry — a failed enumeration
  // memoizes nothing, so every attempt re-encodes), then arm exactly that
  // many. Tier 1 fails, the fault exhausts, tier 2 builds clean, and tier 1
  // must borrow the nearest built (deeper) tier's result.
  core::DeveloperConfig one_tier = config();
  one_tier.tier_reductions = {2.0};
  fault::configure("codec.webp.encode", {.probability = 1.0});
  EXPECT_THROW(core::Aw4aPipeline(one_tier).build_tiers(*page_), Error);
  const std::uint64_t fires_to_fail = fault::fire_count("codec.webp.encode");
  ASSERT_GT(fires_to_fail, 0u);

  fault::reset();
  fault::configure("codec.webp.encode", {.probability = 1.0, .max_fires = fires_to_fail});
  const auto tiers = core::Aw4aPipeline(config()).build_tiers(*page_);
  ASSERT_EQ(tiers.size(), 2u);
  EXPECT_FALSE(tiers[0].built);
  EXPECT_TRUE(tiers[1].built);
  EXPECT_EQ(tiers[0].result.result_bytes, tiers[1].result.result_bytes)
      << "failed tier should borrow the built tier's result";
  EXPECT_NE(tiers[0].note.find("fell back to tier"), std::string::npos) << tiers[0].note;
}

TEST_F(DegradationTest, ZeroTiersServerServesDegradedOriginal) {
  // Stage-1 needs webp for the transcode rule on every tier: 100% codec
  // failure means no tier can ever build.
  fault::configure("codec.webp.encode", {.probability = 1.0});
  const core::TranscodingServer server(*page_, config(), net::PlanType::kDataVoiceLowUsage);
  EXPECT_TRUE(server.degraded());
  EXPECT_TRUE(server.tiers().empty());
  EXPECT_NE(server.degraded_reason().find("tiers failed"), std::string::npos)
      << server.degraded_reason();

  net::HttpRequest saver;
  saver.headers = {{"Save-Data", "on"}, {"X-Geo-Country", "ET"}};
  const auto degraded = server.handle(saver);
  EXPECT_EQ(degraded.status, 200);
  EXPECT_EQ(degraded.content_length, page_->transfer_size());
  ASSERT_NE(degraded.header("AW4A-Tier"), nullptr);
  EXPECT_EQ(*degraded.header("AW4A-Tier"), "none");
  EXPECT_NE(degraded.header("AW4A-Degraded"), nullptr);

  // An unconstrained user sees a normal original-page response.
  const auto plain = server.handle(net::HttpRequest{});
  EXPECT_EQ(plain.status, 200);
  ASSERT_NE(plain.header("AW4A-Tier"), nullptr);
  EXPECT_EQ(*plain.header("AW4A-Tier"), "original");
  EXPECT_EQ(plain.header("AW4A-Degraded"), nullptr);
}

TEST_F(DegradationTest, SweepEveryFaultPointServerNeverThrows) {
  // The headline guarantee: with ANY single registered fault point firing
  // 100% of the time, server construction + all four scenarios answer with
  // well-formed responses, deterministically for a fixed seed.
  auto run_scenarios = [&]() -> std::vector<std::string> {
    const core::TranscodingServer server(*page_, config(),
                                         net::PlanType::kDataVoiceLowUsage);
    std::vector<std::string> wires;
    for (const auto& request : scenarios()) {
      const auto parsed = net::parse_request(net::serialize(request));
      EXPECT_TRUE(parsed.has_value());
      wires.push_back(net::serialize(server.handle(*parsed)));
    }
    return wires;
  };

  for (const std::string& point : fault::known_points()) {
    if (point.rfind("test.", 0) == 0) continue;  // unit-test scratch points
    SCOPED_TRACE("fault point: " + point);

    fault::reset();
    fault::set_seed(11);
    fault::configure(point, {.probability = 1.0});
    std::vector<std::string> first;
    ASSERT_NO_THROW(first = run_scenarios());

    fault::reset();
    fault::set_seed(11);
    fault::configure(point, {.probability = 1.0});
    std::vector<std::string> second;
    ASSERT_NO_THROW(second = run_scenarios());

    EXPECT_EQ(first, second) << "degradation path must be deterministic";

    ASSERT_EQ(first.size(), 4u);
    for (const std::string& wire : first) {
      const auto response = net::parse_response(wire);
      ASSERT_TRUE(response.has_value()) << "unparsable wire response:\n" << wire;
      EXPECT_EQ(response->status, 200) << wire;
      // Either a real tier/original, or an explicitly degraded original.
      ASSERT_NE(response->header("AW4A-Tier"), nullptr) << wire;
      if (*response->header("AW4A-Tier") == "none") {
        EXPECT_NE(response->header("AW4A-Degraded"), nullptr) << wire;
      }
      EXPECT_GT(response->content_length, 0u) << wire;
    }
  }
}

TEST_F(DegradationTest, SweepEveryFaultPointServerNeverThrowsWithPrewarm) {
  // The fault sweep with the parallel ladder prewarm enabled. Thread
  // interleavings reorder per-point hit numbers, but a probability-1.0 rule
  // fires on every hit regardless of its number, and a prewarm-time failure
  // memoizes nothing (the serial path re-attempts it) — so responses must
  // still be byte-identical across runs.
  core::DeveloperConfig prewarm_config = config();
  prewarm_config.prewarm_workers = 4;
  auto run_scenarios = [&]() -> std::vector<std::string> {
    const core::TranscodingServer server(*page_, prewarm_config,
                                         net::PlanType::kDataVoiceLowUsage);
    std::vector<std::string> wires;
    for (const auto& request : scenarios()) {
      wires.push_back(net::serialize(server.handle(request)));
    }
    return wires;
  };

  for (const std::string& point : fault::known_points()) {
    if (point.rfind("test.", 0) == 0) continue;
    SCOPED_TRACE("fault point: " + point);

    fault::reset();
    fault::set_seed(11);
    fault::configure(point, {.probability = 1.0});
    std::vector<std::string> first;
    ASSERT_NO_THROW(first = run_scenarios());

    fault::reset();
    fault::set_seed(11);
    fault::configure(point, {.probability = 1.0});
    std::vector<std::string> second;
    ASSERT_NO_THROW(second = run_scenarios());

    EXPECT_EQ(first, second) << "prewarm must not break degradation determinism";
  }

  // And without faults: the prewarmed server answers identically to the
  // serial one.
  fault::reset();
  const core::TranscodingServer serial(*page_, config(), net::PlanType::kDataVoiceLowUsage);
  const core::TranscodingServer prewarmed(*page_, prewarm_config,
                                          net::PlanType::kDataVoiceLowUsage);
  for (const auto& request : scenarios()) {
    EXPECT_EQ(net::serialize(prewarmed.handle(request)), net::serialize(serial.handle(request)));
  }
}

TEST_F(DegradationTest, SweepEveryFaultPointOriginServerNeverThrows) {
  // Same guarantee one layer up: the multi-site origin (lazy builds, tier
  // cache, single flight) absorbs every fault point — including its own
  // serving.* family — and degrades instead of erroring. The cache means a
  // point that fires during the one build poisons at most that build; the
  // per-request degradation path covers the rest.
  auto run_scenarios = [&]() -> std::vector<std::string> {
    std::vector<serving::OriginSite> sites;
    sites.push_back(serving::OriginSite{"paper.example", *page_, config(),
                                        net::PlanType::kDataVoiceLowUsage});
    const serving::OriginServer origin(std::move(sites));
    std::vector<std::string> wires;
    for (auto& request : scenarios()) {
      request.headers.push_back({"Host", "paper.example"});
      const auto parsed = net::parse_request(net::serialize(request));
      EXPECT_TRUE(parsed.has_value());
      wires.push_back(net::serialize(origin.handle(*parsed)));
    }
    // The stats endpoint must stay reachable under any fault; its body is
    // timing-dependent, so only its status joins the determinism check.
    net::HttpRequest stats;
    stats.path = "/aw4a/stats";
    const auto stats_response = origin.handle(stats);
    EXPECT_EQ(stats_response.status, 200);
    EXPECT_EQ(origin.metrics().internal_errors, 0u);
    return wires;
  };

  for (const std::string& point : fault::known_points()) {
    if (point.rfind("test.", 0) == 0) continue;  // unit-test scratch points
    SCOPED_TRACE("fault point: " + point);

    fault::reset();
    fault::set_seed(11);
    fault::configure(point, {.probability = 1.0});
    std::vector<std::string> first;
    ASSERT_NO_THROW(first = run_scenarios());

    fault::reset();
    fault::set_seed(11);
    fault::configure(point, {.probability = 1.0});
    std::vector<std::string> second;
    ASSERT_NO_THROW(second = run_scenarios());

    EXPECT_EQ(first, second) << "degradation path must be deterministic";

    ASSERT_EQ(first.size(), 4u);
    for (const std::string& wire : first) {
      const auto response = net::parse_response(wire);
      ASSERT_TRUE(response.has_value()) << "unparsable wire response:\n" << wire;
      EXPECT_EQ(response->status, 200) << wire;
      ASSERT_NE(response->header("AW4A-Tier"), nullptr) << wire;
      if (*response->header("AW4A-Tier") == "none") {
        EXPECT_NE(response->header("AW4A-Degraded"), nullptr) << wire;
      }
      EXPECT_GT(response->content_length, 0u) << wire;
    }
  }
}

}  // namespace
}  // namespace aw4a
