#include "analysis/experiments.h"

#include <gtest/gtest.h>

#include "util/stats.h"

namespace aw4a::analysis {
namespace {

// Small corpora keep the suite fast; the benches run the full sizes.
AnalysisOptions small() {
  AnalysisOptions options;
  options.pages_per_country = 24;
  options.global_pages = 60;
  return options;
}

TEST(Analysis, MeasureCountriesTracksTable) {
  const auto stats = measure_countries(small());
  ASSERT_EQ(stats.size(), 99u);
  for (const auto& s : stats) {
    EXPECT_NEAR(s.mean_page_mb, s.country->mean_page_mb, 0.06) << s.country->name;
    EXPECT_LT(s.mean_cached_mb, s.mean_page_mb);
    double type_total = 0;
    for (double v : s.mean_type_mb) type_total += v;
    EXPECT_NEAR(type_total, s.mean_page_mb, 0.01);
  }
}

TEST(Analysis, GlobalMeansNearPaperConstants) {
  const CountryStats g = measure_global(small());
  EXPECT_NEAR(g.mean_page_mb, dataset::kGlobalMeanPageMb, 0.08);
  // Paper: cached global mean 1.02 MB (58.7% reduction).
  EXPECT_NEAR(g.mean_cached_mb, dataset::kGlobalMeanCachedPageMb, 0.35);
}

TEST(Analysis, RemovalRatiosInPaperBands) {
  const auto stats = measure_countries(small());
  const web::ObjectType imgs[] = {web::ObjectType::kImage};
  const web::ObjectType js[] = {web::ObjectType::kJs};
  const web::ObjectType both[] = {web::ObjectType::kImage, web::ObjectType::kJs};
  const web::ObjectType four[] = {web::ObjectType::kImage, web::ObjectType::kJs,
                                  web::ObjectType::kCss, web::ObjectType::kFont};
  const auto no_img = removal_ratios(stats, imgs, false);
  const auto no_js = removal_ratios(stats, js, false);
  const auto no_both = removal_ratios(stats, both, false);
  const auto no_four = removal_ratios(stats, four, false);
  // Paper §3.3 (non-cached): images 1.4-4.2x, JS 1.1-1.7x, both 3.1-8.8x,
  // all four 4.3-15.6x. Bands get slack for sampling noise.
  EXPECT_GT(min_of(no_img), 1.2);
  EXPECT_LT(max_of(no_img), 4.8);
  EXPECT_GT(min_of(no_js), 1.05);
  EXPECT_LT(max_of(no_js), 2.2);
  EXPECT_GT(min_of(no_both), 2.3);
  EXPECT_LT(max_of(no_both), 10.5);
  EXPECT_GT(min_of(no_four), 3.0);
  EXPECT_LT(max_of(no_four), 18.0);
  // Ordering is structural: removing more always reduces more.
  for (std::size_t i = 0; i < stats.size(); ++i) {
    EXPECT_GT(no_both[i], no_img[i]);
    EXPECT_GT(no_four[i], no_both[i]);
  }
}

TEST(Analysis, PawPointsAndAffordabilityCurve) {
  const auto points = paw_by_country(net::PlanType::kDataOnly, false);
  EXPECT_EQ(points.size(), 96u);
  // Fig. 3a: the failing share falls monotonically with the reduction factor
  // and matches the table-derived calibration at 1x.
  double prev = 101.0;
  for (double factor : {1.0, 1.5, 2.0, 3.0, 4.5, 10.0}) {
    const double failing = pct_countries_failing(net::PlanType::kDataOnly, false, factor);
    EXPECT_LE(failing, prev);
    prev = failing;
  }
  EXPECT_NEAR(pct_countries_failing(net::PlanType::kDataOnly, false, 1.0), 39.6, 1.0);
  EXPECT_EQ(pct_countries_failing(net::PlanType::kDataOnly, false, 10.0), 0.0);
}

TEST(Analysis, PaperHeadline15xBand) {
  // "Reducing the average webpage size by 1.5x allows 12.1-14.1% of the
  // countries to meet the affordability target."
  for (net::PlanType plan :
       {net::PlanType::kDataOnly, net::PlanType::kDataVoiceHighUsage}) {
    const double at1 = pct_countries_failing(plan, false, 1.0);
    const double at15 = pct_countries_failing(plan, false, 1.5);
    EXPECT_GE(at1 - at15, 10.0) << net::plan_code(plan);
    EXPECT_LE(at1 - at15, 16.0) << net::plan_code(plan);
  }
}

TEST(Analysis, CompareRbrGridSmallRun) {
  RbrGridOptions options;
  options.sites = 2;
  options.min_reduction = 0.15;
  options.max_reduction = 0.25;
  options.step = 0.10;
  options.grid_timeout_seconds = 2.0;
  options.min_images = 2;
  options.max_images = 22;
  const auto rows = compare_rbr_grid(options);
  ASSERT_FALSE(rows.empty());
  int compared = 0;
  for (const auto& row : rows) {
    EXPECT_GE(row.rbr_qss, 0.0);
    if (row.both_met_target) {
      ++compared;
      // Grid search never loses by much; RBR stays within a few percent
      // (paper: average gap -0.76%, worst -6.1%).
      EXPECT_GT(row.qss_diff_pct, -8.0);
      EXPECT_LT(row.qss_diff_pct, 5.0);
    }
  }
  EXPECT_GT(compared, 0);
}

TEST(Analysis, CountryReductionShapes) {
  CountryReductionOptions options;
  options.pages_per_country = 6;
  auto rows = country_wise_reduction(options);
  ASSERT_EQ(rows.size(), 25u);
  double prev_paw = 0.0;
  for (const auto& row : rows) {
    EXPECT_GT(row.paw, prev_paw);  // paper order: ascending PAW
    prev_paw = row.paw;
    EXPECT_GE(row.pct_meeting_qt08, row.pct_meeting_qt09);  // looser Qt helps
    // Stricter Qt keeps QSS (weakly) higher; tiny inversions can appear when
    // mild targets are met before the threshold ever binds.
    EXPECT_GE(row.avg_qss_qt09, row.avg_qss_qt08 - 5e-3);
    EXPECT_GE(row.avg_qss_qt09, 0.9 - 1e-6);
  }
  // Low-PAW countries meet the target far more often than high-PAW ones.
  const double head = rows.front().pct_meeting_qt08;
  const double tail = rows.back().pct_meeting_qt08;
  EXPECT_GT(head, tail);
}

TEST(Analysis, HbsQualitySweepShape) {
  HbsQualityOptions options;
  options.sites = 4;
  const auto points = hbs_quality_sweep(options);
  ASSERT_EQ(points.size(), 4u);
  for (const auto& p : points) {
    EXPECT_GE(p.qss, 0.85);
    EXPECT_LE(p.qss, 1.0);
    EXPECT_LE(p.qfs, 1.0);
    EXPECT_NEAR(p.quality, (p.qss + p.qfs) / 2.0, 1e-9);
    EXPECT_GT(p.reduction_pct, 0.0);
  }
}

TEST(Analysis, BrowserComparisonShape) {
  BrowserComparisonOptions options;
  options.sites = 3;
  const auto rows = compare_browsers(options);
  ASSERT_EQ(rows.size(), 3u);
  for (const auto& row : rows) {
    EXPECT_GT(row.chrome_mb, 0.0);
    // Brave block-scripts cuts deeper than default shields.
    EXPECT_GT(row.brave_blocked_pct, row.brave_pct);
    // HBS matched-size runs recorded with a quality score.
    if (row.hbs_vs_opera_pct != 0.0) {
      EXPECT_GT(row.hbs_vs_opera_quality, 0.5);
    }
  }
}

}  // namespace
}  // namespace aw4a::analysis
