#include "core/ultra_low.h"

#include <gtest/gtest.h>

#include "core/api.h"
#include "core/knapsack.h"
#include "core/rbr.h"
#include "core/server.h"
#include "dataset/corpus.h"
#include "imaging/fingerprint.h"
#include "util/rng.h"
#include "util/table.h"
#include "web/markup.h"

namespace aw4a::core {
namespace {

web::WebPage rich_page(std::uint64_t seed = 73, Bytes size = from_mb(1.4)) {
  dataset::CorpusGenerator gen(dataset::CorpusOptions{.seed = seed, .rich = true});
  Rng rng(seed);
  return gen.make_page(rng, size, gen.global_profile());
}

DeveloperConfig ultra_config() {
  DeveloperConfig config;
  config.tier_reductions = {1.5, 3.0};
  config.measure_qfs = false;
  config.ultra_low.text_only = true;
  config.ultra_low.markup_rewrite = true;
  return config;
}

// Shared ladder fixture: tier builds run the full pipeline, so build once.
class UltraLowTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    page_ = new web::WebPage(rich_page());
    tiers_ = new std::vector<Tier>(Aw4aPipeline(ultra_config()).build_tiers(*page_));
  }
  static void TearDownTestSuite() {
    delete tiers_;
    delete page_;
    tiers_ = nullptr;
    page_ = nullptr;
  }
  static web::WebPage* page_;
  static std::vector<Tier>* tiers_;
};

web::WebPage* UltraLowTest::page_ = nullptr;
std::vector<Tier>* UltraLowTest::tiers_ = nullptr;

TEST_F(UltraLowTest, UltraTiersAppendBelowTheImageLadder) {
  ASSERT_EQ(tiers_->size(), 4u);
  EXPECT_EQ((*tiers_)[0].kind, TierKind::kImage);
  EXPECT_EQ((*tiers_)[1].kind, TierKind::kImage);
  EXPECT_EQ((*tiers_)[2].kind, TierKind::kTextOnly);
  EXPECT_EQ((*tiers_)[3].kind, TierKind::kMarkupRewrite);
  for (const Tier& tier : *tiers_) {
    EXPECT_TRUE(tier.built) << tier.note;
    // Ultra tiers are constructions: their own size is the target, met by
    // definition. (Image tiers may legitimately miss a hard byte target.)
    if (tier.kind != TierKind::kImage) {
      EXPECT_TRUE(tier.result.met_target) << to_string(tier.kind);
    }
  }
  // Constructions report what they achieved as what they requested.
  EXPECT_NEAR((*tiers_)[2].requested_reduction, (*tiers_)[2].achieved_reduction(), 1e-9);
  EXPECT_NEAR((*tiers_)[3].requested_reduction, (*tiers_)[3].achieved_reduction(), 1e-9);
}

TEST_F(UltraLowTest, MarkupTierIsTheDeepestRung) {
  // The markup tier dominates everything. The text-only tier keeps scripts
  // (the page stays functional), so it reduces but need not beat a deep
  // image tier on JS-heavy pages — the ladder is legitimately non-monotone.
  const double deepest_image =
      std::max((*tiers_)[0].achieved_reduction(), (*tiers_)[1].achieved_reduction());
  EXPECT_GT((*tiers_)[2].achieved_reduction(), 1.0);
  EXPECT_GT((*tiers_)[3].achieved_reduction(), deepest_image);
  EXPECT_GT((*tiers_)[3].achieved_reduction(), (*tiers_)[2].achieved_reduction())
      << "the single-file rewrite is the deepest rung";
}

TEST_F(UltraLowTest, MarkupTierSavesAtLeast85Percent) {
  // The acceptance bar for the deepest rung: >= 85% of page bytes gone.
  EXPECT_GE((*tiers_)[3].savings_fraction(), 0.85);
}

TEST_F(UltraLowTest, TextOnlyTierKeepsThePageFunctional) {
  const TranscodeResult& result = (*tiers_)[2].result;
  EXPECT_EQ(result.algorithm, "ultra/text-only");
  // Scripts stay at this tier, so functionality is intact by construction.
  for (const web::WebObject& o : page_->objects) {
    if (o.type == web::ObjectType::kJs) {
      EXPECT_FALSE(result.served.is_dropped(o.id));
    }
    if (o.type == web::ObjectType::kImage && !o.is_ad && o.image != nullptr) {
      ASSERT_TRUE(result.served.images.count(o.id));
      const auto& v = result.served.images.at(o.id).variant;
      ASSERT_TRUE(v.has_value());
      EXPECT_EQ(v->kind, imaging::DegradationKind::kPlaceholder);
    }
  }
}

TEST_F(UltraLowTest, MarkupTierShipsOneBlob) {
  const TranscodeResult& result = (*tiers_)[3].result;
  EXPECT_EQ(result.algorithm, "ultra/markup-rewrite");
  ASSERT_NE(result.served.rewrite, nullptr);
  EXPECT_EQ(result.result_bytes, result.served.rewrite->transfer_bytes);
}

TEST_F(UltraLowTest, PawTierReachesUltraRungsForUnaffordableCountries) {
  // A country whose PAW demands more than the image ladder can give must be
  // routed to an ultra tier, not stuck at the deepest image rung.
  const double deepest_image =
      std::max((*tiers_)[0].achieved_reduction(), (*tiers_)[1].achieved_reduction());
  bool exercised = false;
  for (const dataset::Country& country : dataset::countries()) {
    if (!country.has_price_data) continue;
    const double paw = paw_index(country, net::PlanType::kDataVoiceLowUsage);
    if (paw <= deepest_image + 1e-9) continue;
    const std::size_t idx = paw_tier(*tiers_, country, net::PlanType::kDataVoiceLowUsage);
    EXPECT_NE((*tiers_)[idx].kind, TierKind::kImage) << country.name;
    exercised = true;
  }
  EXPECT_TRUE(exercised) << "no country demanded ultra depth; fixture too mild";
}

TEST_F(UltraLowTest, ServerNamesUltraTiersInTheHeader) {
  TranscodingServer server(*page_, ultra_config());
  net::HttpRequest request;
  request.method = "GET";
  request.path = "/";
  request.headers.push_back({"Save-Data", "on"});
  // Savings just under the markup tier's: lands on an ultra tier by gap.
  request.headers.push_back(
      {"AW4A-Savings", fmt((*tiers_)[3].savings_fraction() * 100.0, 2)});
  const net::HttpResponse response = server.handle(request);
  std::string tier_header;
  for (const auto& [name, value] : response.headers) {
    if (name == "AW4A-Tier") tier_header = value;
  }
  EXPECT_EQ(tier_header, "markup-rewrite");
}

TEST(UltraLowSolvers, KnapsackSelectsPlaceholderRungsUnderTightBudgets) {
  const web::WebPage page = rich_page(74);
  imaging::LadderOptions options;
  options.placeholder_rung = true;
  LadderCache ladders(options);
  web::ServedPage served = web::serve_original(page);
  KnapsackOptions ko;
  ko.quality_threshold = 0.3;  // ultra-low Qt admits the placeholder floor
  (void)knapsack_optimize(served, page.transfer_size() / 50, ladders, ko);
  int placeholders = 0;
  for (const auto& [id, image] : served.images) {
    if (image.variant.has_value() &&
        image.variant->kind == imaging::DegradationKind::kPlaceholder) {
      ++placeholders;
    }
  }
  EXPECT_GT(placeholders, 0)
      << "a 50x budget below any encode rung must drive images to placeholders";
}

TEST(UltraLowSolvers, RbrDescendsToPlaceholdersOnlyWhenQtAdmitsThem) {
  const web::WebPage page = rich_page(75);
  imaging::LadderOptions options;
  options.placeholder_rung = true;
  LadderCache ladders(options);
  const Bytes impossible = page.transfer_size() / 60;

  web::ServedPage strict = web::serve_original(page);
  RbrOptions high_qt;  // the paper's default Qt: placeholders are out of set
  (void)rank_based_reduce(strict, impossible, ladders, high_qt);
  for (const auto& [id, image] : strict.images) {
    if (image.variant.has_value()) {
      EXPECT_NE(image.variant->kind, imaging::DegradationKind::kPlaceholder);
    }
  }

  web::ServedPage loose = web::serve_original(page);
  RbrOptions low_qt;
  low_qt.quality_threshold = 0.3;
  const RbrOutcome outcome = rank_based_reduce(loose, impossible, ladders, low_qt);
  int placeholders = 0;
  for (const auto& [id, image] : loose.images) {
    if (image.variant.has_value() &&
        image.variant->kind == imaging::DegradationKind::kPlaceholder) {
      ++placeholders;
    }
  }
  EXPECT_GT(placeholders, 0);
  EXPECT_LE(loose.transfer_size(), strict.transfer_size());
  EXPECT_GT(outcome.images_touched, 0);
}

TEST(UltraLowFingerprints, PlaceholderKnobsOnlyCountWhenEnabled) {
  imaging::LadderOptions a;  // image-only: the pre-refactor rung space
  imaging::LadderOptions b = a;
  b.placeholder_base_similarity = 0.5;  // knob moved, rung disabled
  b.placeholder_alt_bonus = 0.01;
  EXPECT_EQ(imaging::ladder_options_fingerprint(a), imaging::ladder_options_fingerprint(b))
      << "disabled placeholder knobs must not perturb image-only fingerprints";

  imaging::LadderOptions c = a;
  c.placeholder_rung = true;
  EXPECT_NE(imaging::ladder_options_fingerprint(a), imaging::ladder_options_fingerprint(c));
  imaging::LadderOptions d = c;
  d.placeholder_base_similarity = 0.5;
  EXPECT_NE(imaging::ladder_options_fingerprint(c), imaging::ladder_options_fingerprint(d))
      << "enabled placeholder knobs are part of the rung space";
}

TEST(UltraLowConfig, ImageOnlyConfigsBuildBitIdenticalTiers) {
  // The guarantee the refactor pins: a config that never asks for ultra
  // tiers builds byte-for-byte the tiers it always built, knob values
  // notwithstanding.
  const web::WebPage page = rich_page(76, from_mb(0.9));
  DeveloperConfig image_only;
  image_only.tier_reductions = {1.5, 3.0};
  image_only.measure_qfs = false;
  DeveloperConfig knobs_moved = image_only;
  knobs_moved.ultra_low.placeholder_base_similarity = 0.9;
  knobs_moved.ultra_low.placeholder_alt_bonus = 0.05;

  const std::vector<Tier> a = Aw4aPipeline(image_only).build_tiers(page);
  const std::vector<Tier> b = Aw4aPipeline(knobs_moved).build_tiers(page);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].result.result_bytes, b[i].result.result_bytes);
    EXPECT_EQ(a[i].kind, TierKind::kImage);
    EXPECT_EQ(b[i].kind, TierKind::kImage);
    EXPECT_DOUBLE_EQ(a[i].result.quality.qss, b[i].result.quality.qss);
  }
}

}  // namespace
}  // namespace aw4a::core
