#include "net/compress.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace aw4a::net {
namespace {

TEST(GzipSize, TinyInputsPassThrough) {
  const std::string s = "abc";
  EXPECT_EQ(gzip_size(s), s.size() + 20);
}

TEST(GzipSize, RepetitiveDataCompressesHard) {
  const std::string s(50000, 'x');
  EXPECT_LT(gzip_size(s), s.size() / 20);
}

TEST(GzipSize, RandomDataDoesNotCompress) {
  Rng rng(1);
  std::vector<std::uint8_t> data(20000);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  // Entropy-limited: near input size (never above input + overhead).
  EXPECT_GT(gzip_size(data), data.size() * 9 / 10);
  EXPECT_LE(gzip_size(data), data.size() + 20);
}

TEST(GzipSize, DeterministicAndMonotoneInRepeats) {
  const std::string unit = "function foo(bar) { return bar + 1; }\n";
  std::string two;
  std::string ten;
  for (int i = 0; i < 2; ++i) two += unit;
  for (int i = 0; i < 10; ++i) ten += unit;
  EXPECT_EQ(gzip_size(ten), gzip_size(ten));
  // Ten copies compress to much less than 5x the two-copy cost.
  EXPECT_LT(gzip_size(ten), 3 * gzip_size(two));
}

class SynthTextTest : public ::testing::TestWithParam<TextClass> {};

TEST_P(SynthTextTest, HitsRequestedSize) {
  Rng rng(7);
  const Bytes target = 40 * kKB;
  const std::string body = synth_text(rng, GetParam(), target);
  EXPECT_EQ(body.size(), target);
}

TEST_P(SynthTextTest, CompressesToPlausibleWebRatio) {
  Rng rng(8);
  const std::string body = synth_text(rng, GetParam(), 60 * kKB);
  const double ratio = static_cast<double>(body.size()) / static_cast<double>(gzip_size(body));
  // Web text gzips at roughly 2.5-9x.
  EXPECT_GT(ratio, 2.0) << to_string(GetParam());
  EXPECT_LT(ratio, 12.0) << to_string(GetParam());
}

TEST_P(SynthTextTest, MinifyShrinksRawAndNeverGrowsGzip) {
  Rng rng(9);
  const std::string body = synth_text(rng, GetParam(), 50 * kKB);
  const std::string mini = minify(body, GetParam());
  EXPECT_LT(mini.size(), body.size());
  EXPECT_LE(gzip_size(mini), gzip_size(body) + 64);
}

INSTANTIATE_TEST_SUITE_P(AllClasses, SynthTextTest,
                         ::testing::Values(TextClass::kHtml, TextClass::kJs, TextClass::kCss,
                                           TextClass::kJson),
                         [](const auto& info) { return to_string(info.param); });

TEST(Minify, StripsCommentsAndIndentation) {
  const std::string body = "  /* a comment */  const x = 1;\n    const y = 2;\n";
  const std::string mini = minify(body, TextClass::kJs);
  EXPECT_EQ(mini.find("comment"), std::string::npos);
  EXPECT_NE(mini.find("const x = 1;"), std::string::npos);
  EXPECT_EQ(mini.find("  "), std::string::npos);  // no double spaces survive
}

TEST(Minify, HandlesUnterminatedComment) {
  const std::string body = "x = 1; /* never closed";
  const std::string mini = minify(body, TextClass::kJs);
  EXPECT_NE(mini.find("x = 1;"), std::string::npos);
  EXPECT_EQ(mini.find("never"), std::string::npos);
}

TEST(TextWire, PipelineOrdering) {
  Rng rng(10);
  const TextWire wire = text_wire_sizes(rng, TextClass::kJs, 80 * kKB);
  EXPECT_EQ(wire.raw, 80 * kKB);
  EXPECT_LT(wire.minified, wire.raw);
  EXPECT_LT(wire.gzip, wire.raw);
  EXPECT_LE(wire.min_gzip, wire.gzip + 64);
}

// Calibration pin for Stage-1's default minify_gain (0.93): the real
// minify+gzip pipeline lands in [0.80, 0.99] of plain gzip across classes.
TEST(TextWire, MinifyGainCalibration) {
  Rng rng(11);
  for (TextClass cls : {TextClass::kHtml, TextClass::kJs, TextClass::kCss}) {
    const TextWire wire = text_wire_sizes(rng, cls, 100 * kKB);
    const double gain = static_cast<double>(wire.min_gzip) / static_cast<double>(wire.gzip);
    EXPECT_GT(gain, 0.70) << to_string(cls);
    EXPECT_LT(gain, 1.01) << to_string(cls);
  }
}

TEST(FontModel, SubsettingAndMetadata) {
  const FontModel font{.glyph_bytes = 80 * kKB, .metadata_bytes = 12 * kKB};
  EXPECT_EQ(font.wire_size(), 92 * kKB);
  EXPECT_EQ(font.subset_size(1.0, false), 92 * kKB);
  EXPECT_EQ(font.subset_size(1.0, true), 80 * kKB);
  EXPECT_EQ(font.subset_size(0.5, true), 40 * kKB);
  EXPECT_THROW((void)font.subset_size(0.0, true), LogicError);
}

}  // namespace
}  // namespace aw4a::net
