#include "js/script.h"

#include <gtest/gtest.h>

#include "js/callgraph.h"
#include "util/rng.h"

namespace aw4a::js {
namespace {

Script make_script(Bytes target = 80 * kKB, std::uint64_t seed = 1) {
  Rng rng(seed);
  ScriptSynthOptions options;
  options.target_bytes = target;
  return synth_script(rng, options);
}

TEST(Script, TotalBytesNearTarget) {
  const Script s = make_script(100 * kKB);
  const double ratio =
      static_cast<double>(s.total_bytes()) / static_cast<double>(100 * kKB);
  EXPECT_GT(ratio, 0.8);
  EXPECT_LT(ratio, 1.3);
}

TEST(Script, FindLocatesFunctions) {
  const Script s = make_script();
  ASSERT_FALSE(s.functions.empty());
  const FunctionId id = s.functions.front().id;
  EXPECT_NE(s.find(id), nullptr);
  EXPECT_EQ(s.find(id)->id, id);
  EXPECT_EQ(s.find(999999), nullptr);
}

TEST(Script, HasRootsAndBindings) {
  const Script s = make_script();
  EXPECT_FALSE(s.init_functions.empty());
  EXPECT_FALSE(s.bindings.empty());
  for (const auto& b : s.bindings) EXPECT_NE(s.find(b.handler), nullptr);
  for (FunctionId f : s.init_functions) EXPECT_NE(s.find(f), nullptr);
}

TEST(Script, AdScriptsBindOnlyTimers) {
  Rng rng(3);
  ScriptSynthOptions options;
  options.target_bytes = 40 * kKB;
  options.ad_related = true;
  options.third_party = true;
  const Script s = synth_script(rng, options);
  EXPECT_TRUE(s.ad_related);
  EXPECT_TRUE(s.third_party);
  for (const auto& b : s.bindings) EXPECT_EQ(b.kind, EventKind::kTimer);
}

TEST(Script, DeadFractionProducesUnreachableCode) {
  Rng rng(4);
  ScriptSynthOptions options;
  options.target_bytes = 120 * kKB;
  options.dead_fraction = 0.5;
  const Script s = synth_script(rng, options);
  const auto live = reachable_runtime(s, all_roots(s));
  EXPECT_LT(live.size(), s.functions.size());
  const Bytes live_bytes = bytes_of(s, live);
  EXPECT_LT(live_bytes, s.total_bytes());
}

TEST(Callgraph, StaticSubsetOfRuntime) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const Script s = make_script(60 * kKB, seed);
    const auto roots = all_roots(s);
    const auto stat = reachable_static(s, roots);
    const auto runtime = reachable_runtime(s, roots);
    for (FunctionId f : stat) EXPECT_TRUE(runtime.count(f)) << "seed " << seed;
  }
}

TEST(Callgraph, RootsAlwaysReachable) {
  const Script s = make_script();
  const auto roots = all_roots(s);
  const auto live = reachable_static(s, roots);
  for (FunctionId r : roots) EXPECT_TRUE(live.count(r));
}

TEST(Callgraph, UnknownRootsIgnored) {
  const Script s = make_script();
  const std::vector<FunctionId> bogus{424242};
  EXPECT_TRUE(reachable_static(s, bogus).empty());
}

TEST(Callgraph, BytesOfSumsSelectedFunctions) {
  const Script s = make_script();
  std::set<FunctionId> all_ids;
  for (const auto& f : s.functions) all_ids.insert(f.id);
  EXPECT_EQ(bytes_of(s, all_ids), s.total_bytes());
  EXPECT_EQ(bytes_of(s, {}), 0u);
}

TEST(EventKind, Names) {
  EXPECT_STREQ(to_string(EventKind::kClick), "click");
  EXPECT_STREQ(to_string(EventKind::kScroll), "scroll");
  EXPECT_STREQ(to_string(EventKind::kKeypress), "keypress");
}

}  // namespace
}  // namespace aw4a::js
