#include "core/adjustable_js.h"

#include <gtest/gtest.h>

#include "core/hbs.h"
#include "dataset/corpus.h"
#include "js/callgraph.h"
#include "util/rng.h"

namespace aw4a::core {
namespace {

web::WebPage rich_page(std::uint64_t seed = 90) {
  dataset::CorpusGenerator gen(dataset::CorpusOptions{.seed = seed, .rich = true});
  Rng rng(seed);
  return gen.make_page(rng, from_mb(2.0), gen.global_profile());
}

TEST(AdjustableJs, TrivialTargetIsNoOp) {
  const web::WebPage page = rich_page();
  web::ServedPage served = web::serve_original(page);
  const auto outcome = apply_adjustable_js(served, page.transfer_size());
  EXPECT_TRUE(outcome.met_target);
  EXPECT_EQ(outcome.functions_removed, 0);
  EXPECT_TRUE(served.scripts.empty());
}

TEST(AdjustableJs, StopsAtTargetInsteadOfOvershooting) {
  const web::WebPage page = rich_page();
  // A target Muzeel would overshoot: halfway between original and full-dead-
  // code removal.
  web::ServedPage muzeel_probe = web::serve_original(page);
  apply_muzeel(muzeel_probe);
  const Bytes full = page.transfer_size();
  const Bytes muzeel = muzeel_probe.transfer_size();
  ASSERT_LT(muzeel, full);
  const Bytes target = (full + muzeel) / 2;

  web::ServedPage served = web::serve_original(page);
  const auto outcome = apply_adjustable_js(served, target);
  EXPECT_TRUE(outcome.met_target);
  EXPECT_LE(outcome.bytes_after, target);
  // Overshoot bounded by one function's bytes, not Muzeel's full sweep.
  EXPECT_GT(outcome.bytes_after, muzeel);
}

TEST(AdjustableJs, NeverRemovesStaticallyLiveCode) {
  const web::WebPage page = rich_page(91);
  web::ServedPage served = web::serve_original(page);
  apply_adjustable_js(served, 1);  // impossible target: removes all it can
  for (const auto& [object_id, decision] : served.scripts) {
    const web::WebObject* object = page.find(object_id);
    ASSERT_NE(object, nullptr);
    const auto live =
        js::reachable_static(*object->script, js::all_roots(*object->script));
    for (js::FunctionId f : live) {
      EXPECT_TRUE(decision.live.count(f)) << "live function removed";
    }
  }
}

TEST(AdjustableJs, FloorMatchesMuzeel) {
  // With an impossible target, adjustable removal converges to Muzeel's
  // floor (all statically dead code gone).
  const web::WebPage page = rich_page(92);
  web::ServedPage adjustable = web::serve_original(page);
  apply_adjustable_js(adjustable, 1);
  web::ServedPage muzeel = web::serve_original(page);
  apply_muzeel(muzeel);
  EXPECT_EQ(adjustable.transfer_size(web::ObjectType::kJs),
            muzeel.transfer_size(web::ObjectType::kJs));
}

TEST(AdjustableJs, SafeFunctionsRemovedBeforeRiskyOnes) {
  const web::WebPage page = rich_page(93);
  // Mild target: only part of the dead code needs to go.
  web::ServedPage muzeel_probe = web::serve_original(page);
  apply_muzeel(muzeel_probe);
  const Bytes target =
      page.transfer_size() - (page.transfer_size() - muzeel_probe.transfer_size()) / 4;
  web::ServedPage served = web::serve_original(page);
  const auto outcome = apply_adjustable_js(served, target);
  ASSERT_TRUE(outcome.met_target);
  // If any risky function was removed, every safe one must be gone already —
  // with only a quarter of the dead bytes needed, none should be risky.
  EXPECT_EQ(outcome.risky_removed, 0);
}

TEST(AdjustableJs, ByteAccountingConsistent) {
  const web::WebPage page = rich_page(94);
  web::ServedPage served = web::serve_original(page);
  const Bytes before = served.transfer_size();
  const auto outcome = apply_adjustable_js(served, before * 85 / 100);
  EXPECT_EQ(outcome.bytes_after, served.transfer_size());
  for (const auto& [object_id, decision] : served.scripts) {
    const web::WebObject* object = page.find(object_id);
    EXPECT_EQ(decision.raw_bytes, js::bytes_of(*object->script, decision.live));
    EXPECT_EQ(decision.transfer_bytes, object->script_transfer_for(decision.raw_bytes));
  }
}

TEST(AdjustableJs, HbsIntegrationReducesOvershoot) {
  const web::WebPage page = rich_page(95);
  const Bytes target = page.transfer_size() * 7 / 10;
  LadderCache ladders_a;
  LadderCache ladders_b;
  HbsOptions muzeel_options;
  muzeel_options.measure_qfs = false;
  HbsOptions adj_options;
  adj_options.measure_qfs = false;
  adj_options.js_strategy = HbsOptions::JsStrategy::kAdjustable;
  const auto with_muzeel =
      hbs_transcode(page, web::serve_original(page), target, ladders_a, muzeel_options);
  const auto with_adjustable =
      hbs_transcode(page, web::serve_original(page), target, ladders_b, adj_options);
  if (with_muzeel.met_target && with_adjustable.met_target) {
    // Adjustable lands at least as close to the target from below.
    EXPECT_GE(with_adjustable.result_bytes + 1, with_muzeel.result_bytes);
  }
  EXPECT_NE(with_adjustable.algorithm.find("hbs/"), std::string::npos);
}

}  // namespace
}  // namespace aw4a::core
