#include "analysis/export.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "util/error.h"
#include "util/parallel.h"

namespace aw4a::analysis {
namespace {

std::filesystem::path tmp_file(const std::string& name) {
  return std::filesystem::temp_directory_path() / "aw4a_export_test" / name;
}

std::string slurp(const std::filesystem::path& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(CsvEscape, QuotesOnlyWhenNeeded) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("with,comma"), "\"with,comma\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(csv_escape("line\nbreak"), "\"line\nbreak\"");
  EXPECT_EQ(csv_escape(""), "");
}

TEST(CsvWriter, WritesHeaderAndRows) {
  const auto path = tmp_file("basic.csv");
  {
    CsvWriter writer(path, {"country", "paw"});
    writer.row(std::vector<std::string>{"Kenya", "1.85"});
    const double values[] = {4.7, 13.2};
    writer.row_values(values);
    EXPECT_EQ(writer.rows_written(), 2u);
  }
  const std::string content = slurp(path);
  EXPECT_EQ(content, "country,paw\nKenya,1.85\n4.7,13.2\n");
}

TEST(CsvWriter, RejectsMismatchedRows) {
  const auto path = tmp_file("mismatch.csv");
  CsvWriter writer(path, {"a", "b"});
  EXPECT_THROW(writer.row(std::vector<std::string>{"only-one"}), LogicError);
}

TEST(CsvWriter, CreatesParentDirectories) {
  const auto path = tmp_file("nested/deeper/file.csv");
  std::filesystem::remove_all(tmp_file("nested"));
  { CsvWriter writer(path, {"x"}); }
  EXPECT_TRUE(std::filesystem::exists(path));
}

TEST(ExportCdf, RoundTripsQuantiles) {
  const auto path = tmp_file("cdf.csv");
  std::vector<double> values;
  for (int i = 1; i <= 100; ++i) values.push_back(static_cast<double>(i));
  export_cdf(path, values, 10);
  const std::string content = slurp(path);
  EXPECT_NE(content.find("p,x"), std::string::npos);
  EXPECT_NE(content.find("1,100"), std::string::npos);  // q=1 -> max
  // 10 data rows + header.
  EXPECT_EQ(std::count(content.begin(), content.end(), '\n'), 11);
}

TEST(Parallel, MapPreservesOrderAndValues) {
  const auto out = parallel_map<int>(1000, [](std::size_t i) { return static_cast<int>(i * 3); });
  ASSERT_EQ(out.size(), 1000u);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], static_cast<int>(i * 3));
}

TEST(Parallel, ForCoversEveryIndexExactlyOnce) {
  std::vector<std::atomic<int>> counts(500);
  parallel_for(counts.size(), [&](std::size_t i) { counts[i].fetch_add(1); });
  for (const auto& c : counts) EXPECT_EQ(c.load(), 1);
}

TEST(Parallel, PropagatesExceptions) {
  EXPECT_THROW(
      parallel_for(100, [](std::size_t i) { if (i == 37) throw Error("boom"); }),
      Error);
}

TEST(Parallel, ZeroCountIsNoOp) {
  bool ran = false;
  parallel_for(0, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

}  // namespace
}  // namespace aw4a::analysis
