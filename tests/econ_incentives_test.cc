#include "econ/incentives.h"

#include <gtest/gtest.h>

#include "util/error.h"

namespace aw4a::econ {
namespace {

MarketModel developing() {
  MarketModel m;
  m.mean_monthly_income_usd = 180.0;
  m.income_sigma = 1.0;
  m.usd_per_gb = 2.5;
  return m;
}

TEST(Incentives, SmallerPagesBringMoreUsersOnline) {
  Rng rng(1);
  const MarketModel market = developing();
  Rng a = rng.fork(1);
  Rng b = rng.fork(1);  // same stream: the only difference is the page size
  const auto heavy = evaluate_market(a, market, 2.47e6);
  const auto light = evaluate_market(b, market, 2.47e6 / 3.0);
  EXPECT_GT(light.users_online, heavy.users_online);
  EXPECT_GT(light.ad_revenue_usd, heavy.ad_revenue_usd);
}

TEST(Incentives, RichMarketsSaturate) {
  Rng rng(2);
  MarketModel rich;
  rich.mean_monthly_income_usd = 3200.0;
  rich.income_sigma = 0.6;
  Rng a = rng.fork(1);
  Rng b = rng.fork(1);
  const auto heavy = evaluate_market(a, rich, 2.47e6);
  const auto light = evaluate_market(b, rich, 2.47e6 / 3.0);
  // Nearly everyone already affords the original: little headroom.
  EXPECT_GT(heavy.users_online, 0.9 * rich.population);
  EXPECT_LT(light.users_online / heavy.users_online, 1.1);
}

TEST(Incentives, RevenueProportionalToAccessesAndCpm) {
  Rng rng(3);
  MarketModel market = developing();
  market.cpm_usd = 2.0;
  Rng a = rng.fork(1);
  const auto outcome = evaluate_market(a, market, 1e6);
  EXPECT_NEAR(outcome.ad_revenue_usd, outcome.monthly_accesses / 1000.0 * 2.0, 1e-9);
  EXPECT_NEAR(outcome.monthly_accesses, outcome.users_online * market.desired_accesses,
              1e-6);
}

TEST(Incentives, RevenueCurveMonotoneInDevelopingMarket) {
  Rng rng(4);
  const double reductions[] = {1.0, 1.5, 3.0, 6.0};
  const auto curve = revenue_curve(rng, developing(), 2.47e6, reductions);
  ASSERT_EQ(curve.size(), 4u);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i].second, curve[i - 1].second * 0.95)
        << "revenue should not collapse as tiers deepen";
  }
  EXPECT_GT(curve.back().second, curve.front().second);
}

TEST(Incentives, DeterministicPerRng) {
  const MarketModel market = developing();
  Rng a(7);
  Rng b(7);
  EXPECT_EQ(evaluate_market(a, market, 2e6).users_online,
            evaluate_market(b, market, 2e6).users_online);
}

TEST(Incentives, QuintileBurdenReproducesPakistanExample) {
  // Paper §3.2: bottom-quintile Pakistanis pay ~2.5% of income for broadband
  // that costs the average earner 0.96% of GNI — a ratio of ~2.6x, which a
  // lognormal income distribution with sigma ~0.6 (Gini ~0.33, close to Pakistan's) produces.
  Rng rng(10);
  const double bottom = quintile_price_share(0.96, 0.6, 1, rng);
  EXPECT_NEAR(bottom, 2.5, 0.6);
  // Quintile shares are monotone: richer quintiles feel the price less.
  Rng rng2(11);
  double prev = 1e9;
  for (int q = 1; q <= 5; ++q) {
    Rng qr = rng2.fork(static_cast<std::uint64_t>(q));
    const double share = quintile_price_share(0.96, 0.6, q, qr);
    EXPECT_LT(share, prev);
    prev = share;
  }
  // The top quintile pays less than the average share.
  Rng rng3(12);
  EXPECT_LT(quintile_price_share(0.96, 0.6, 5, rng3), 0.96);
}

TEST(Incentives, QuintileBurdenFlatWithoutInequality) {
  Rng rng(13);
  EXPECT_NEAR(quintile_price_share(1.0, 0.0, 1, rng), 1.0, 1e-9);
}

TEST(Incentives, ValidatesInputs) {
  Rng rng(8);
  const MarketModel market = developing();
  EXPECT_THROW((void)evaluate_market(rng, market, 0.0), LogicError);
  const double bad_reductions[] = {0.5};
  EXPECT_THROW((void)revenue_curve(rng, market, 1e6, bad_reductions), LogicError);
  EXPECT_THROW((void)quintile_price_share(1.0, 0.9, 0, rng), LogicError);
  EXPECT_THROW((void)quintile_price_share(1.0, 0.9, 6, rng), LogicError);
}

}  // namespace
}  // namespace aw4a::econ
