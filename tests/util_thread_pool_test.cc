// Contract tests for the persistent work-stealing pool and the parallel_for
// built on it: worker-count clamp semantics, nested-submission deadlock
// freedom, error aggregation through the pool path, and cancellation
// stopping not-yet-claimed work. The existing robustness_test ParallelFor
// suite (and serving_stress_test under TSan) continues to cover the
// error-contract and data-race surface; this file pins what is new.
#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <thread>

#include "util/error.h"
#include "util/parallel.h"

namespace aw4a {
namespace {

// --- Worker-count clamp (satellite: 0 -> default, 1 -> inline) ---

TEST(ParallelForClamp, ZeroWorkersUsesDefaultAndCompletes) {
  std::atomic<std::size_t> ran{0};
  parallel_for(64, [&](std::size_t) { ran.fetch_add(1); }, /*workers=*/0);
  EXPECT_EQ(ran.load(), 64u);
}

TEST(ParallelForClamp, OneWorkerRunsInlineOnCallingThread) {
  // No pool round-trip: every body observes the calling thread, which is not
  // a pool worker, and the shared pool sees zero new submissions.
  const auto before = util::ThreadPool::shared().stats();
  const std::thread::id caller = std::this_thread::get_id();
  std::size_t ran = 0;
  parallel_for(
      32,
      [&](std::size_t) {
        EXPECT_EQ(std::this_thread::get_id(), caller);
        EXPECT_FALSE(util::ThreadPool::on_worker_thread());
        ++ran;  // unsynchronized on purpose: inline means single-threaded
      },
      /*workers=*/1);
  EXPECT_EQ(ran, 32u);
  const auto after = util::ThreadPool::shared().stats();
  EXPECT_EQ(after.submitted, before.submitted);
}

TEST(ParallelForClamp, SingleItemRunsInlineRegardlessOfWorkerCount) {
  const auto before = util::ThreadPool::shared().stats();
  const std::thread::id caller = std::this_thread::get_id();
  parallel_for(1, [&](std::size_t) { EXPECT_EQ(std::this_thread::get_id(), caller); },
               /*workers=*/8);
  const auto after = util::ThreadPool::shared().stats();
  EXPECT_EQ(after.submitted, before.submitted);
}

TEST(ParallelForClamp, PinnedCountDeliversRealConcurrency) {
  // The pool grows on demand, so a pinned 4 is truly 4-way even on one core
  // — all four bodies can be simultaneously in flight.
  constexpr unsigned kWorkers = 4;
  std::atomic<unsigned> entered{0};
  parallel_for(
      kWorkers,
      [&](std::size_t) {
        entered.fetch_add(1);
        while (entered.load() < kWorkers) std::this_thread::yield();
      },
      kWorkers);
  EXPECT_EQ(entered.load(), kWorkers);
  EXPECT_GE(util::ThreadPool::shared().threads(), static_cast<int>(kWorkers) - 1);
}

// --- Nested submission (satellite: no deadlock from worker threads) ---

TEST(ThreadPoolNesting, ParallelForInsideParallelForCompletes) {
  // Every outer body runs an inner parallel_for. The calling thread of each
  // inner call (a pool worker) participates in its own claim loop, so
  // completion never waits on the pool having idle workers — this finishes
  // even when the pool is saturated by the outer level.
  std::atomic<std::size_t> inner_total{0};
  parallel_for(
      4,
      [&](std::size_t) {
        parallel_for(8, [&](std::size_t) { inner_total.fetch_add(1); }, /*workers=*/2);
      },
      /*workers=*/4);
  EXPECT_EQ(inner_total.load(), 32u);
}

TEST(ThreadPoolNesting, SubmitFromWorkerDoesNotDeadlock) {
  util::ThreadPool& pool = util::ThreadPool::shared();
  pool.ensure_threads(2);
  std::atomic<bool> inner_ran{false};
  std::atomic<bool> outer_done{false};
  pool.submit([&] {
    EXPECT_TRUE(util::ThreadPool::on_worker_thread());
    pool.submit([&] { inner_ran.store(true); });
    outer_done.store(true);
  });
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (!(inner_ran.load() && outer_done.load()) &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::yield();
  }
  EXPECT_TRUE(outer_done.load());
  EXPECT_TRUE(inner_ran.load()) << "task submitted from a worker was never scheduled";
}

// --- Error aggregation through the pool path ---

TEST(ThreadPoolErrors, NestedFailurePreservesTypeAcrossPoolBoundary) {
  EXPECT_THROW(parallel_for(
                   4,
                   [&](std::size_t i) {
                     parallel_for(
                         4,
                         [&](std::size_t j) {
                           if (i == 1 && j == 2) throw Infeasible("inner fault");
                         },
                         /*workers=*/2);
                   },
                   /*workers=*/4),
               Infeasible);
}

// --- Cancellation (satellite: poll stops not-yet-claimed work) ---

TEST(ParallelForCancel, CancellationStopsUnclaimedWorkAndThrowsDeadline) {
  constexpr unsigned kWorkers = 4;
  std::atomic<std::size_t> executed{0};
  std::atomic<bool> cancel{false};
  try {
    parallel_for(
        10000,
        [&](std::size_t) {
          executed.fetch_add(1);
          cancel.store(true);  // first bodies flip the flag; the rest must not start
        },
        kWorkers, [&] { return cancel.load(); });
    FAIL() << "should have thrown DeadlineExceeded";
  } catch (const DeadlineExceeded&) {
  }
  // Each participant claims at most one body after the flag flips (the poll
  // runs before every claim), so execution stops at ~worker-count items.
  EXPECT_LE(executed.load(), static_cast<std::size_t>(kWorkers));
  EXPECT_GE(executed.load(), 1u);
}

TEST(ParallelForCancel, PreCancelledInlineCallRunsNothing) {
  std::size_t ran = 0;
  EXPECT_THROW(parallel_for(100, [&](std::size_t) { ++ran; }, /*workers=*/1,
                            [] { return true; }),
               DeadlineExceeded);
  EXPECT_EQ(ran, 0u);
}

TEST(ParallelForCancel, NullPollMeansNoCancellation) {
  std::atomic<std::size_t> ran{0};
  parallel_for(16, [&](std::size_t) { ran.fetch_add(1); }, /*workers=*/2);
  EXPECT_EQ(ran.load(), 16u);
}

// --- Pool bookkeeping ---

TEST(ThreadPoolStats, CountsSubmissionsAndExecutions) {
  util::ThreadPool& pool = util::ThreadPool::shared();
  const auto before = pool.stats();
  std::atomic<int> ran{0};
  for (int i = 0; i < 8; ++i) {
    pool.submit([&] { ran.fetch_add(1); });
  }
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (ran.load() < 8 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::yield();
  }
  ASSERT_EQ(ran.load(), 8);
  const auto after = pool.stats();
  EXPECT_EQ(after.submitted - before.submitted, 8u);
  EXPECT_GE(after.executed - before.executed, 8u);
}

TEST(ThreadPoolStats, EnsureThreadsGrowsAndNeverShrinks) {
  util::ThreadPool& pool = util::ThreadPool::shared();
  pool.ensure_threads(3);
  const int grown = pool.threads();
  EXPECT_GE(grown, 3);
  pool.ensure_threads(1);  // no shrink
  EXPECT_EQ(pool.threads(), grown);
}

TEST(ThreadPoolWork, BodiesRunOnPoolWorkersWhenParallel) {
  // With a pinned count > 1, at least one body should land off the calling
  // thread (the runners spin on a barrier so the caller cannot finish the
  // whole range alone).
  constexpr unsigned kWorkers = 3;
  std::atomic<unsigned> entered{0};
  std::atomic<int> on_pool{0};
  parallel_for(
      kWorkers,
      [&](std::size_t) {
        entered.fetch_add(1);
        while (entered.load() < kWorkers) std::this_thread::yield();
        if (util::ThreadPool::on_worker_thread()) on_pool.fetch_add(1);
      },
      kWorkers);
  EXPECT_GE(on_pool.load(), static_cast<int>(kWorkers) - 1);
}

}  // namespace
}  // namespace aw4a
