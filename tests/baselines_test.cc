#include <gtest/gtest.h>

#include <algorithm>

#include "baselines/brave.h"
#include "baselines/freebasics.h"
#include "baselines/operamini.h"
#include "baselines/weblight.h"
#include "core/quality.h"
#include "dataset/corpus.h"
#include "util/rng.h"

namespace aw4a::baselines {
namespace {

using web::ObjectType;

web::WebPage rich_page(std::uint64_t seed = 60) {
  dataset::CorpusGenerator gen(dataset::CorpusOptions{.seed = seed, .rich = true});
  Rng rng(seed);
  return gen.make_page(rng, from_mb(2.2), gen.global_profile());
}

TEST(WebLight, RemovesNonAdJsAndShrinksHard) {
  const web::WebPage page = rich_page();
  const BaselineResult r = weblight_transcode(page);
  for (const auto& o : page.objects) {
    if (o.type == ObjectType::kJs && !o.is_ad) {
      EXPECT_TRUE(r.served.is_dropped(o.id));
    }
    // External CSS is inlined: it costs zero bytes itself (the document grew
    // instead) but the page is NOT unstyled.
    if (o.type == ObjectType::kCss) {
      EXPECT_FALSE(r.served.is_dropped(o.id));
      EXPECT_EQ(r.served.object_transfer(o), 0u);
    }
  }
  EXPECT_GT(r.reduction_pct, 30.0);  // aggressive by design
  EXPECT_LT(r.result_bytes, page.transfer_size());
}

TEST(WebLight, InlinesCssIntoDocument) {
  const web::WebPage page = rich_page();
  const BaselineResult r = weblight_transcode(page);
  const web::WebObject* html = nullptr;
  for (const auto& o : page.objects) {
    if (o.type == ObjectType::kHtml) html = &o;
  }
  ASSERT_NE(html, nullptr);
  EXPECT_GT(r.served.object_transfer(*html), html->transfer_bytes);
}

TEST(WebLight, QualityCostIsSubstantial) {
  // The paper's critique: Web Light's reductions come at a real quality
  // cost — unfloored image degradation (QSS) and dead interactivity (QFS).
  const web::WebPage page = rich_page();
  const BaselineResult r = weblight_transcode(page);
  const auto quality = core::evaluate_quality(r.served);
  EXPECT_LT(quality.qss, 0.99);
  EXPECT_LT(quality.qfs, 1.0);
  EXPECT_LT(quality.quality, 0.985);
}

TEST(FreeBasics, PlatformRulesEnforced) {
  const web::WebPage page = rich_page();
  EXPECT_FALSE(freebasics_compliant(page));
  const BaselineResult r = freebasics_filter(page);
  for (const auto& o : page.objects) {
    switch (o.type) {
      case ObjectType::kJs:
      case ObjectType::kIframe:
      case ObjectType::kMedia:
        EXPECT_TRUE(r.served.is_dropped(o.id));
        break;
      case ObjectType::kImage:
        // Large images violate the rules; script-injected images disappear
        // with their (banned) injectors.
        EXPECT_EQ(r.served.is_dropped(o.id),
                  o.transfer_bytes > 50 * kKB || o.injected_by != 0);
        break;
      default:
        EXPECT_FALSE(r.served.is_dropped(o.id));
    }
  }
  // All widgets die with all JS gone.
  EXPECT_TRUE(r.page_broken || page.layout.empty());
}

TEST(Brave, DefaultShieldsDropAdsTrackersAndTheirInjections) {
  const web::WebPage page = rich_page();
  Rng rng(1);
  const BaselineResult r = brave_transcode(page, rng);
  auto injector_dropped = [&](const web::WebObject& o) {
    const web::WebObject* injector = o.injected_by ? page.find(o.injected_by) : nullptr;
    return injector != nullptr && r.served.is_dropped(injector->id);
  };
  for (const auto& o : page.objects) {
    if (o.is_ad || o.is_tracker) {
      EXPECT_TRUE(r.served.is_dropped(o.id));
    } else {
      // Non-flagged objects survive unless their injecting script was
      // blocked (the transitive effect of ad blocking).
      EXPECT_EQ(r.served.is_dropped(o.id), injector_dropped(o));
    }
  }
  EXPECT_GT(r.reduction_pct, 0.0);
}

TEST(Brave, BlockScriptsCutsDeeperThanDefault) {
  const web::WebPage page = rich_page();
  Rng rng1(2);
  Rng rng2(2);
  const BaselineResult def = brave_transcode(page, rng1);
  BraveOptions blocked_options;
  blocked_options.block_scripts = true;
  const BaselineResult blocked = brave_transcode(page, rng2, blocked_options);
  EXPECT_GT(blocked.reduction_pct, def.reduction_pct);
  // First-party scripts always survive block-scripts mode.
  for (const auto& o : page.objects) {
    if (o.type == ObjectType::kJs && !o.third_party && !o.is_ad && !o.is_tracker) {
      EXPECT_FALSE(blocked.served.is_dropped(o.id));
    }
  }
}

TEST(Brave, PagesWhoseWidgetsAreAllThirdPartyBreak) {
  // Paper §8.3: 4% of pages break completely under block-scripts — exactly
  // the pages whose interactive widgets all come from (unwhitelisted)
  // third-party scripts. Construct one deterministically.
  web::WebPage page = rich_page();
  for (auto& o : page.objects) {
    if (o.type == ObjectType::kJs) o.third_party = true;
  }
  Rng rng(3);
  BraveOptions options;
  options.block_scripts = true;
  options.whitelist_prob = 0.0;  // nothing whitelisted
  const BaselineResult r = brave_transcode(page, rng, options);
  const bool has_widgets =
      std::any_of(page.layout.begin(), page.layout.end(), [](const web::LayoutBlock& b) {
        return b.kind == web::LayoutBlock::Kind::kWidget;
      });
  ASSERT_TRUE(has_widgets);
  EXPECT_TRUE(r.page_broken);
}

TEST(Brave, MostNormalPagesSurviveBlockScripts) {
  // With first-party widgets on most pages, outright breakage is the
  // exception (paper: 4%).
  int broken = 0;
  int total = 0;
  for (std::uint64_t seed = 60; seed < 72; ++seed) {
    const web::WebPage page = rich_page(seed);
    Rng rng(seed);
    BraveOptions options;
    options.block_scripts = true;
    const BaselineResult r = brave_transcode(page, rng, options);
    broken += r.page_broken ? 1 : 0;
    ++total;
  }
  EXPECT_LT(broken, total / 3);
}

TEST(OperaMini, RecompressesImagesAndText) {
  const web::WebPage page = rich_page();
  const BaselineResult r = operamini_transcode(page);
  EXPECT_LT(r.served.transfer_size(ObjectType::kHtml), page.transfer_size(ObjectType::kHtml));
  EXPECT_NE(r.served.transfer_size(ObjectType::kImage),
            page.transfer_size(ObjectType::kImage));
  EXPECT_GT(r.reduction_pct, 0.0);
}

TEST(OperaMini, MediumQualityCutsMoreThanHigh) {
  const web::WebPage page = rich_page();
  OperaMiniOptions high;
  high.image_quality = OperaImageQuality::kHigh;
  OperaMiniOptions medium;
  medium.image_quality = OperaImageQuality::kMedium;
  EXPECT_GT(operamini_transcode(page, medium).reduction_pct,
            operamini_transcode(page, high).reduction_pct);
}

TEST(OperaMini, UnsupportedEventHandlersDead) {
  const web::WebPage page = rich_page();
  const BaselineResult r = operamini_transcode(page);
  // Any keypress/scroll-only handler must be dead in the served page.
  for (const auto& o : page.objects) {
    if (o.type != ObjectType::kJs || o.script == nullptr) continue;
    for (const auto& binding : o.script->bindings) {
      if (binding.kind == js::EventKind::kKeypress ||
          binding.kind == js::EventKind::kScroll) {
        const auto it = r.served.scripts.find(o.id);
        ASSERT_NE(it, r.served.scripts.end());
        // The handler may still be live if it is also reachable from init or
        // from a supported-event handler; verify via the recorded live set
        // that at least the restriction was applied (live is a subset).
        EXPECT_LE(it->second.live.size(), o.script->functions.size());
      }
    }
  }
  // QFS reflects the event-subset breakage on at least some pages.
  const auto quality = core::evaluate_quality(r.served);
  EXPECT_LE(quality.qfs, 1.0);
}

TEST(Finalize, ReductionPctSigned) {
  const web::WebPage page = rich_page();
  BaselineResult grow;
  grow.served = web::serve_original(page);
  ASSERT_FALSE(page.objects.empty());
  grow.served.retextured[page.objects[0].id] =
      page.objects[0].transfer_bytes + page.transfer_size();  // inflate
  finalize(grow);
  EXPECT_LT(grow.reduction_pct, 0.0);
}

}  // namespace
}  // namespace aw4a::baselines
