#include "core/server.h"

#include <gtest/gtest.h>

#include "dataset/corpus.h"
#include "util/rng.h"

namespace aw4a::core {
namespace {

// Building the tier ladder is the slow part; share one server.
class ServerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dataset::CorpusGenerator gen(dataset::CorpusOptions{.seed = 120, .rich = true});
    Rng rng(120);
    page_ = new web::WebPage(gen.make_page(rng, from_mb(2.0), gen.global_profile()));
    DeveloperConfig config;
    config.tier_reductions = {1.5, 3.0};
    config.measure_qfs = false;
    server_ = new TranscodingServer(*page_, config, net::PlanType::kDataVoiceLowUsage);
  }
  static void TearDownTestSuite() {
    delete server_;
    delete page_;
    server_ = nullptr;
    page_ = nullptr;
  }
  static net::HttpRequest get(std::initializer_list<net::HttpHeader> headers) {
    net::HttpRequest request;
    request.headers = headers;
    return request;
  }
  static web::WebPage* page_;
  static TranscodingServer* server_;
};

web::WebPage* ServerTest::page_ = nullptr;
TranscodingServer* ServerTest::server_ = nullptr;

TEST_F(ServerTest, PlainGetServesOriginal) {
  const auto response = server_->handle(get({}));
  EXPECT_EQ(response.status, 200);
  EXPECT_EQ(response.content_length, page_->transfer_size());
  ASSERT_NE(response.header("AW4A-Tier"), nullptr);
  EXPECT_EQ(*response.header("AW4A-Tier"), "original");
}

TEST_F(ServerTest, SaveDataWithCountryServesPawTier) {
  const auto response =
      server_->handle(get({{"Save-Data", "on"}, {"X-Geo-Country", "HN"}}));
  EXPECT_EQ(response.status, 200);
  EXPECT_LT(response.content_length, page_->transfer_size());
  ASSERT_NE(response.header("AW4A-Tier"), nullptr);
  EXPECT_NE(*response.header("AW4A-Tier"), "original");
  ASSERT_NE(response.header("AW4A-Reason"), nullptr);
  EXPECT_NE(response.header("AW4A-Reason")->find("Honduras"), std::string::npos);
}

TEST_F(ServerTest, AffordableCountryStillGetsOriginal) {
  const auto response =
      server_->handle(get({{"Save-Data", "on"}, {"X-Geo-Country", "DE"}}));
  EXPECT_EQ(response.content_length, page_->transfer_size());
}

TEST_F(ServerTest, SavingsPreferenceOverridesCountry) {
  const auto deep = server_->handle(get({{"Save-Data", "on"},
                                         {"X-Geo-Country", "DE"},
                                         {"AW4A-Savings", "65"}}));
  // Germany alone would get the original; the explicit preference wins.
  EXPECT_LT(deep.content_length, page_->transfer_size());
  ASSERT_NE(deep.header("AW4A-Savings-Achieved"), nullptr);
}

TEST_F(ServerTest, UnknownCountryFallsBackGracefully) {
  // "Atlantis" fails ISO-2 validation at the HTTP layer; "XX" is well-formed
  // but matches no country. Both degrade to a preference of 0% savings.
  for (const char* hint : {"Atlantis", "XX"}) {
    const auto response =
        server_->handle(get({{"Save-Data", "on"}, {"X-Geo-Country", hint}}));
    EXPECT_EQ(response.status, 200) << hint;
  }
}

TEST_F(ServerTest, VaryHeaderCoversAllHints) {
  const auto response = server_->handle(get({}));
  ASSERT_NE(response.header("Vary"), nullptr);
  const std::string& vary = *response.header("Vary");
  EXPECT_NE(vary.find("Save-Data"), std::string::npos);
  EXPECT_NE(vary.find("X-Geo-Country"), std::string::npos);
  EXPECT_NE(vary.find("AW4A-Savings"), std::string::npos);
}

TEST_F(ServerTest, NonGetRejected) {
  net::HttpRequest request;
  request.method = "POST";
  const auto response = server_->handle(request);
  EXPECT_EQ(response.status, 405);
  ASSERT_NE(response.header("Allow"), nullptr);
}

TEST_F(ServerTest, UnknownPathGets404) {
  net::HttpRequest request;
  request.path = "/news";
  request.headers = {{"Save-Data", "on"}, {"X-Geo-Country", "ET"}};
  const auto response = server_->handle(request);
  EXPECT_EQ(response.status, 404);
  EXPECT_EQ(response.content_length, 0u);
}

TEST_F(ServerTest, IndexAliasServesThePage) {
  net::HttpRequest request;
  request.path = "/index.html";
  const auto response = server_->handle(request);
  EXPECT_EQ(response.status, 200);
  EXPECT_EQ(response.content_length, page_->transfer_size());
}

TEST_F(ServerTest, EndToEndOverTheWire) {
  // Full loop: serialize a browser request, parse it server-side (as a
  // proxyless origin would), serialize the response, parse it client-side.
  net::HttpRequest browser;
  browser.path = "/";
  browser.headers = {{"Save-Data", "on"}, {"X-Geo-Country", "ET"}};
  const auto server_side = net::parse_request(net::serialize(browser));
  ASSERT_TRUE(server_side.has_value());
  const auto response = server_->handle(*server_side);
  const auto client_side = net::parse_response(net::serialize(response));
  ASSERT_TRUE(client_side.has_value());
  EXPECT_EQ(client_side->content_length, response.content_length);
  EXPECT_LT(client_side->content_length, page_->transfer_size());
}

}  // namespace
}  // namespace aw4a::core
