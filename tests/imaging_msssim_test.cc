// Tests for MS-SSIM and the pluggable quality-metric dispatch.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <utility>

#include "imaging/resize.h"
#include "imaging/ssim.h"
#include "imaging/synth.h"
#include "imaging/variants.h"
#include "util/rng.h"

namespace aw4a::imaging {
namespace {

Raster photo(std::uint64_t seed = 1, int dim = 96) {
  Rng rng(seed);
  return synth_image(rng, ImageClass::kPhoto, dim, dim);
}

TEST(MsSsim, IdentityIsOne) {
  const Raster img = photo();
  EXPECT_NEAR(ms_ssim(img, img), 1.0, 1e-9);
}

TEST(MsSsim, BoundedAndSymmetric) {
  Rng rng(2);
  const Raster a = synth_image(rng, ImageClass::kPhoto, 64, 64);
  const Raster b = synth_image(rng, ImageClass::kTextBanner, 64, 64);
  const double s = ms_ssim(a, b);
  EXPECT_GT(s, 0.0);
  EXPECT_LE(s, 1.0);
  EXPECT_DOUBLE_EQ(s, ms_ssim(b, a));
}

TEST(MsSsim, MoreForgivingOfResolutionLossThanSsim) {
  // MS-SSIM's coarser scales cannot see fine detail the downscale erased, so
  // it scores resolution reduction higher than single-scale SSIM — the
  // documented behaviour of the metric.
  Rng rng(3);
  const Raster img = synth_image(rng, ImageClass::kTextBanner, 96, 96);
  const Raster shown = redisplay(reduce_resolution(img, 0.4), 96, 96);
  EXPECT_GT(ms_ssim(img, shown), ssim(img, shown));
}

TEST(MsSsim, DegradesWithDamage) {
  const Raster img = photo(4);
  Raster damaged = img;
  damaged.fill_rect(10, 10, 40, 40, Pixel{0, 255, 0, 255});
  EXPECT_LT(ms_ssim(img, damaged), ms_ssim(img, img));
}

TEST(MsSsim, TinyImagesFallBackToFewerScales) {
  Rng rng(5);
  const Raster img = synth_image(rng, ImageClass::kLogo, 12, 12);
  // 12px halves below the window at scale 2: must not throw, identity holds.
  EXPECT_NEAR(ms_ssim(img, img, 5), 1.0, 1e-9);
}

TEST(MsSsim, RejectsBadArguments) {
  const Raster img = photo(6, 32);
  EXPECT_THROW((void)ms_ssim(img, img, 0), LogicError);
  Raster other(31, 32);
  EXPECT_THROW((void)ms_ssim(img, other), LogicError);
}

TEST(MsSsim, BufferReuseMatchesFreshPyramid) {
  // ms_ssim ping-pongs two downsample buffers across scales; rebuild the
  // pyramid with fresh buffers per scale via downsample2_into and combine
  // manually. Any stale-buffer bug (wrong size, leftover pixels) diverges.
  Rng rng(21);
  const Raster a_img = synth_image(rng, ImageClass::kPhoto, 96, 96);
  const Raster b_img = synth_image(rng, ImageClass::kPhoto, 96, 96);
  PlaneF a = luma_plane(a_img);
  PlaneF b = luma_plane(b_img);

  static constexpr double kWeights[3] = {0.0448, 0.2856, 0.3001};
  const double weight_sum = kWeights[0] + kWeights[1] + kWeights[2];
  double log_score = 0.0;
  for (int s = 0; s < 3; ++s) {
    log_score += kWeights[s] / weight_sum * std::log(std::max(1e-6, ssim(a, b)));
    if (s + 1 < 3) {
      PlaneF next_a, next_b;  // deliberately fresh each scale
      downsample2_into(a, next_a);
      downsample2_into(b, next_b);
      a = std::move(next_a);
      b = std::move(next_b);
    }
  }
  const double expected = std::exp(log_score);
  EXPECT_DOUBLE_EQ(ms_ssim(a_img, b_img, 3), expected);
}

TEST(MsSsim, DownsampleIntoReusesCapacityAndResizes) {
  const PlaneF big(64, 48, 10.0f);
  const PlaneF small(16, 16, 200.0f);
  PlaneF out;
  downsample2_into(big, out);
  EXPECT_EQ(out.width, 32);
  EXPECT_EQ(out.height, 24);
  EXPECT_FLOAT_EQ(out.at(5, 5), 10.0f);
  // Reusing the same buffer for a smaller input must shrink it (no stale
  // tail) and overwrite every pixel.
  downsample2_into(small, out);
  EXPECT_EQ(out.width, 8);
  EXPECT_EQ(out.height, 8);
  EXPECT_EQ(out.v.size(), 64u);
  for (const float v : out.v) EXPECT_FLOAT_EQ(v, 200.0f);
}

TEST(QualityMetric, DispatchAndNames) {
  const Raster img = photo(7, 48);
  Raster noisy = img;
  noisy.at(5, 5).r ^= 0x80;
  EXPECT_DOUBLE_EQ(compare_images(img, noisy, QualityMetric::kSsim), ssim(img, noisy));
  EXPECT_DOUBLE_EQ(compare_images(img, noisy, QualityMetric::kMsSsim), ms_ssim(img, noisy));
  EXPECT_STREQ(to_string(QualityMetric::kSsim), "ssim");
  EXPECT_STREQ(to_string(QualityMetric::kMsSsim), "ms-ssim");
}

TEST(QualityMetric, LadderHonorsConfiguredMetric) {
  Rng rng(8);
  auto asset = std::make_shared<const SourceImage>(
      make_source_image(rng, ImageClass::kTextBanner, 120 * kKB));
  LadderOptions ssim_options;
  LadderOptions ms_options;
  ms_options.metric = QualityMetric::kMsSsim;
  VariantLadder ssim_ladder(asset, ssim_options);
  VariantLadder ms_ladder(asset, ms_options);
  const auto& fam_ssim = ssim_ladder.resolution_family(asset->format);
  const auto& fam_ms = ms_ladder.resolution_family(asset->format);
  ASSERT_FALSE(fam_ssim.empty());
  ASSERT_FALSE(fam_ms.empty());
  // Same bytes (the codec is unchanged), different scores (the metric isn't).
  EXPECT_EQ(fam_ssim.front().bytes, fam_ms.front().bytes);
  EXPECT_GT(fam_ms.front().ssim, fam_ssim.front().ssim - 1e-9);
}

TEST(QualityMetric, MsSsimLadderUnlocksDeeperReductions) {
  // Under MS-SSIM the same Qt admits deeper rungs: a developer choosing the
  // multi-scale metric trades stricter "pixel identity" for more savings.
  Rng rng(9);
  auto asset = std::make_shared<const SourceImage>(
      make_source_image(rng, ImageClass::kTextBanner, 150 * kKB));
  LadderOptions ssim_options;
  LadderOptions ms_options;
  ms_options.metric = QualityMetric::kMsSsim;
  VariantLadder ssim_ladder(asset, ssim_options);
  VariantLadder ms_ladder(asset, ms_options);
  const auto v_ssim = ssim_ladder.cheapest_with_ssim_at_least(0.9);
  const auto v_ms = ms_ladder.cheapest_with_ssim_at_least(0.9);
  ASSERT_TRUE(v_ssim.has_value());
  ASSERT_TRUE(v_ms.has_value());
  EXPECT_LE(v_ms->bytes, v_ssim->bytes);
}

}  // namespace
}  // namespace aw4a::imaging
