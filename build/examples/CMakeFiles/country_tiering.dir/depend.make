# Empty dependencies file for country_tiering.
# This may be replaced when dependencies are built.
