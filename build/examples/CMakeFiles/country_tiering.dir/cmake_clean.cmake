file(REMOVE_RECURSE
  "CMakeFiles/country_tiering.dir/country_tiering.cpp.o"
  "CMakeFiles/country_tiering.dir/country_tiering.cpp.o.d"
  "country_tiering"
  "country_tiering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/country_tiering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
