file(REMOVE_RECURSE
  "CMakeFiles/transcoding_server.dir/transcoding_server.cpp.o"
  "CMakeFiles/transcoding_server.dir/transcoding_server.cpp.o.d"
  "transcoding_server"
  "transcoding_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transcoding_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
