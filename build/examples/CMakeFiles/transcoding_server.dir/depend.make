# Empty dependencies file for transcoding_server.
# This may be replaced when dependencies are built.
