# Empty dependencies file for operator_dashboard.
# This may be replaced when dependencies are built.
