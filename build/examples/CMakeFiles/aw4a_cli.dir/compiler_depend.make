# Empty compiler generated dependencies file for aw4a_cli.
# This may be replaced when dependencies are built.
