file(REMOVE_RECURSE
  "CMakeFiles/aw4a_cli.dir/aw4a_cli.cpp.o"
  "CMakeFiles/aw4a_cli.dir/aw4a_cli.cpp.o.d"
  "aw4a_cli"
  "aw4a_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aw4a_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
