# Empty dependencies file for bench_fig10_country_reduction.
# This may be replaced when dependencies are built.
