file(REMOVE_RECURSE
  "../bench/bench_fig10_country_reduction"
  "../bench/bench_fig10_country_reduction.pdb"
  "CMakeFiles/bench_fig10_country_reduction.dir/bench_fig10_country_reduction.cc.o"
  "CMakeFiles/bench_fig10_country_reduction.dir/bench_fig10_country_reduction.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_country_reduction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
