file(REMOVE_RECURSE
  "../bench/bench_perf_codecs"
  "../bench/bench_perf_codecs.pdb"
  "CMakeFiles/bench_perf_codecs.dir/bench_perf_codecs.cc.o"
  "CMakeFiles/bench_perf_codecs.dir/bench_perf_codecs.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_perf_codecs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
