file(REMOVE_RECURSE
  "../bench/bench_tab04_browsers"
  "../bench/bench_tab04_browsers.pdb"
  "CMakeFiles/bench_tab04_browsers.dir/bench_tab04_browsers.cc.o"
  "CMakeFiles/bench_tab04_browsers.dir/bench_tab04_browsers.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab04_browsers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
