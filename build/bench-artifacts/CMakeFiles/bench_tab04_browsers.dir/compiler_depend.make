# Empty compiler generated dependencies file for bench_tab04_browsers.
# This may be replaced when dependencies are built.
