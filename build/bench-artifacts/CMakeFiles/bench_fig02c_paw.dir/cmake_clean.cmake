file(REMOVE_RECURSE
  "../bench/bench_fig02c_paw"
  "../bench/bench_fig02c_paw.pdb"
  "CMakeFiles/bench_fig02c_paw.dir/bench_fig02c_paw.cc.o"
  "CMakeFiles/bench_fig02c_paw.dir/bench_fig02c_paw.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig02c_paw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
