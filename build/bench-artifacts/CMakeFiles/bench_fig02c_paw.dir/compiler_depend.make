# Empty compiler generated dependencies file for bench_fig02c_paw.
# This may be replaced when dependencies are built.
