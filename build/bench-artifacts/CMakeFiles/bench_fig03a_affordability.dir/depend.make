# Empty dependencies file for bench_fig03a_affordability.
# This may be replaced when dependencies are built.
