file(REMOVE_RECURSE
  "../bench/bench_fig03a_affordability"
  "../bench/bench_fig03a_affordability.pdb"
  "CMakeFiles/bench_fig03a_affordability.dir/bench_fig03a_affordability.cc.o"
  "CMakeFiles/bench_fig03a_affordability.dir/bench_fig03a_affordability.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig03a_affordability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
