file(REMOVE_RECURSE
  "../bench/bench_export_artifacts"
  "../bench/bench_export_artifacts.pdb"
  "CMakeFiles/bench_export_artifacts.dir/bench_export_artifacts.cc.o"
  "CMakeFiles/bench_export_artifacts.dir/bench_export_artifacts.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_export_artifacts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
