file(REMOVE_RECURSE
  "../bench/bench_ext03_incentives"
  "../bench/bench_ext03_incentives.pdb"
  "CMakeFiles/bench_ext03_incentives.dir/bench_ext03_incentives.cc.o"
  "CMakeFiles/bench_ext03_incentives.dir/bench_ext03_incentives.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext03_incentives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
