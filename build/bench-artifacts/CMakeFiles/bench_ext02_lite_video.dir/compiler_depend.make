# Empty compiler generated dependencies file for bench_ext02_lite_video.
# This may be replaced when dependencies are built.
