file(REMOVE_RECURSE
  "../bench/bench_ext02_lite_video"
  "../bench/bench_ext02_lite_video.pdb"
  "CMakeFiles/bench_ext02_lite_video.dir/bench_ext02_lite_video.cc.o"
  "CMakeFiles/bench_ext02_lite_video.dir/bench_ext02_lite_video.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext02_lite_video.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
