# Empty dependencies file for bench_fig02b_page_sizes.
# This may be replaced when dependencies are built.
