# Empty dependencies file for bench_tab01_services.
# This may be replaced when dependencies are built.
