file(REMOVE_RECURSE
  "../bench/bench_tab01_services"
  "../bench/bench_tab01_services.pdb"
  "CMakeFiles/bench_tab01_services.dir/bench_tab01_services.cc.o"
  "CMakeFiles/bench_tab01_services.dir/bench_tab01_services.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab01_services.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
