file(REMOVE_RECURSE
  "../bench/bench_fig09_rbr_vs_grid"
  "../bench/bench_fig09_rbr_vs_grid.pdb"
  "CMakeFiles/bench_fig09_rbr_vs_grid.dir/bench_fig09_rbr_vs_grid.cc.o"
  "CMakeFiles/bench_fig09_rbr_vs_grid.dir/bench_fig09_rbr_vs_grid.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_rbr_vs_grid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
