# Empty dependencies file for bench_fig09_rbr_vs_grid.
# This may be replaced when dependencies are built.
