file(REMOVE_RECURSE
  "../bench/bench_fig15_blanket_reduction"
  "../bench/bench_fig15_blanket_reduction.pdb"
  "CMakeFiles/bench_fig15_blanket_reduction.dir/bench_fig15_blanket_reduction.cc.o"
  "CMakeFiles/bench_fig15_blanket_reduction.dir/bench_fig15_blanket_reduction.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_blanket_reduction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
