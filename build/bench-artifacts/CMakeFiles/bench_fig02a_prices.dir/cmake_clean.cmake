file(REMOVE_RECURSE
  "../bench/bench_fig02a_prices"
  "../bench/bench_fig02a_prices.pdb"
  "CMakeFiles/bench_fig02a_prices.dir/bench_fig02a_prices.cc.o"
  "CMakeFiles/bench_fig02a_prices.dir/bench_fig02a_prices.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig02a_prices.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
