# Empty dependencies file for bench_fig03c_whatif_multi.
# This may be replaced when dependencies are built.
