file(REMOVE_RECURSE
  "../bench/bench_fig03c_whatif_multi"
  "../bench/bench_fig03c_whatif_multi.pdb"
  "CMakeFiles/bench_fig03c_whatif_multi.dir/bench_fig03c_whatif_multi.cc.o"
  "CMakeFiles/bench_fig03c_whatif_multi.dir/bench_fig03c_whatif_multi.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig03c_whatif_multi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
