# Empty compiler generated dependencies file for bench_fig08_ssim_bytes.
# This may be replaced when dependencies are built.
