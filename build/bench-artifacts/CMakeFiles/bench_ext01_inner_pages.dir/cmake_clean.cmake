file(REMOVE_RECURSE
  "../bench/bench_ext01_inner_pages"
  "../bench/bench_ext01_inner_pages.pdb"
  "CMakeFiles/bench_ext01_inner_pages.dir/bench_ext01_inner_pages.cc.o"
  "CMakeFiles/bench_ext01_inner_pages.dir/bench_ext01_inner_pages.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext01_inner_pages.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
