# Empty compiler generated dependencies file for bench_ext01_inner_pages.
# This may be replaced when dependencies are built.
