# Empty compiler generated dependencies file for bench_fig03b_whatif_single.
# This may be replaced when dependencies are built.
