file(REMOVE_RECURSE
  "../bench/bench_fig03b_whatif_single"
  "../bench/bench_fig03b_whatif_single.pdb"
  "CMakeFiles/bench_fig03b_whatif_single.dir/bench_fig03b_whatif_single.cc.o"
  "CMakeFiles/bench_fig03b_whatif_single.dir/bench_fig03b_whatif_single.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig03b_whatif_single.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
