file(REMOVE_RECURSE
  "../bench/bench_fig07_object_bytes"
  "../bench/bench_fig07_object_bytes.pdb"
  "CMakeFiles/bench_fig07_object_bytes.dir/bench_fig07_object_bytes.cc.o"
  "CMakeFiles/bench_fig07_object_bytes.dir/bench_fig07_object_bytes.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_object_bytes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
