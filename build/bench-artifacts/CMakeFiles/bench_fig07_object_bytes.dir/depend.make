# Empty dependencies file for bench_fig07_object_bytes.
# This may be replaced when dependencies are built.
