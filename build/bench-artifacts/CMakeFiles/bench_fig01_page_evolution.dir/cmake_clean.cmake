file(REMOVE_RECURSE
  "../bench/bench_fig01_page_evolution"
  "../bench/bench_fig01_page_evolution.pdb"
  "CMakeFiles/bench_fig01_page_evolution.dir/bench_fig01_page_evolution.cc.o"
  "CMakeFiles/bench_fig01_page_evolution.dir/bench_fig01_page_evolution.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig01_page_evolution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
