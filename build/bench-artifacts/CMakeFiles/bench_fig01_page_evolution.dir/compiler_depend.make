# Empty compiler generated dependencies file for bench_fig01_page_evolution.
# This may be replaced when dependencies are built.
