file(REMOVE_RECURSE
  "CMakeFiles/dataset_countries_test.dir/dataset_countries_test.cc.o"
  "CMakeFiles/dataset_countries_test.dir/dataset_countries_test.cc.o.d"
  "dataset_countries_test"
  "dataset_countries_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dataset_countries_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
