# Empty dependencies file for dataset_countries_test.
# This may be replaced when dependencies are built.
