file(REMOVE_RECURSE
  "CMakeFiles/imaging_variants_test.dir/imaging_variants_test.cc.o"
  "CMakeFiles/imaging_variants_test.dir/imaging_variants_test.cc.o.d"
  "imaging_variants_test"
  "imaging_variants_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/imaging_variants_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
