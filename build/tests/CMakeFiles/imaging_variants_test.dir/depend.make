# Empty dependencies file for imaging_variants_test.
# This may be replaced when dependencies are built.
