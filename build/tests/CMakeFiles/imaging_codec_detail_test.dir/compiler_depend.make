# Empty compiler generated dependencies file for imaging_codec_detail_test.
# This may be replaced when dependencies are built.
