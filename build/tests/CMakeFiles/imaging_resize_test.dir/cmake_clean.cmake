file(REMOVE_RECURSE
  "CMakeFiles/imaging_resize_test.dir/imaging_resize_test.cc.o"
  "CMakeFiles/imaging_resize_test.dir/imaging_resize_test.cc.o.d"
  "imaging_resize_test"
  "imaging_resize_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/imaging_resize_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
