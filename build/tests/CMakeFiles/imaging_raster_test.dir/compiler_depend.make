# Empty compiler generated dependencies file for imaging_raster_test.
# This may be replaced when dependencies are built.
