file(REMOVE_RECURSE
  "CMakeFiles/imaging_raster_test.dir/imaging_raster_test.cc.o"
  "CMakeFiles/imaging_raster_test.dir/imaging_raster_test.cc.o.d"
  "imaging_raster_test"
  "imaging_raster_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/imaging_raster_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
