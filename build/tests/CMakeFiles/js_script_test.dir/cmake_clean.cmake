file(REMOVE_RECURSE
  "CMakeFiles/js_script_test.dir/js_script_test.cc.o"
  "CMakeFiles/js_script_test.dir/js_script_test.cc.o.d"
  "js_script_test"
  "js_script_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/js_script_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
