file(REMOVE_RECURSE
  "CMakeFiles/core_media_test.dir/core_media_test.cc.o"
  "CMakeFiles/core_media_test.dir/core_media_test.cc.o.d"
  "core_media_test"
  "core_media_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_media_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
