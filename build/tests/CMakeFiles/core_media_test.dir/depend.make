# Empty dependencies file for core_media_test.
# This may be replaced when dependencies are built.
