file(REMOVE_RECURSE
  "CMakeFiles/core_rbr_test.dir/core_rbr_test.cc.o"
  "CMakeFiles/core_rbr_test.dir/core_rbr_test.cc.o.d"
  "core_rbr_test"
  "core_rbr_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_rbr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
