# Empty compiler generated dependencies file for core_rbr_test.
# This may be replaced when dependencies are built.
