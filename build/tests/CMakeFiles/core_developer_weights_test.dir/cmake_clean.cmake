file(REMOVE_RECURSE
  "CMakeFiles/core_developer_weights_test.dir/core_developer_weights_test.cc.o"
  "CMakeFiles/core_developer_weights_test.dir/core_developer_weights_test.cc.o.d"
  "core_developer_weights_test"
  "core_developer_weights_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_developer_weights_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
