# Empty compiler generated dependencies file for core_developer_weights_test.
# This may be replaced when dependencies are built.
