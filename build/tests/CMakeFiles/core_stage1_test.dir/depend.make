# Empty dependencies file for core_stage1_test.
# This may be replaced when dependencies are built.
