file(REMOVE_RECURSE
  "CMakeFiles/core_stage1_test.dir/core_stage1_test.cc.o"
  "CMakeFiles/core_stage1_test.dir/core_stage1_test.cc.o.d"
  "core_stage1_test"
  "core_stage1_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_stage1_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
