file(REMOVE_RECURSE
  "CMakeFiles/analysis_report_test.dir/analysis_report_test.cc.o"
  "CMakeFiles/analysis_report_test.dir/analysis_report_test.cc.o.d"
  "analysis_report_test"
  "analysis_report_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis_report_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
