file(REMOVE_RECURSE
  "CMakeFiles/core_adjustable_js_test.dir/core_adjustable_js_test.cc.o"
  "CMakeFiles/core_adjustable_js_test.dir/core_adjustable_js_test.cc.o.d"
  "core_adjustable_js_test"
  "core_adjustable_js_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_adjustable_js_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
