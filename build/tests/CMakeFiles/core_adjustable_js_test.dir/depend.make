# Empty dependencies file for core_adjustable_js_test.
# This may be replaced when dependencies are built.
