# Empty compiler generated dependencies file for js_muzeel_test.
# This may be replaced when dependencies are built.
