file(REMOVE_RECURSE
  "CMakeFiles/js_muzeel_test.dir/js_muzeel_test.cc.o"
  "CMakeFiles/js_muzeel_test.dir/js_muzeel_test.cc.o.d"
  "js_muzeel_test"
  "js_muzeel_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/js_muzeel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
