file(REMOVE_RECURSE
  "CMakeFiles/net_compress_test.dir/net_compress_test.cc.o"
  "CMakeFiles/net_compress_test.dir/net_compress_test.cc.o.d"
  "net_compress_test"
  "net_compress_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_compress_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
