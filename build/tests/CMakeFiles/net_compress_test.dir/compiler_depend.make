# Empty compiler generated dependencies file for net_compress_test.
# This may be replaced when dependencies are built.
