# Empty dependencies file for dataset_sites_test.
# This may be replaced when dependencies are built.
