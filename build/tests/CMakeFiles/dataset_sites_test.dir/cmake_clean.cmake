file(REMOVE_RECURSE
  "CMakeFiles/dataset_sites_test.dir/dataset_sites_test.cc.o"
  "CMakeFiles/dataset_sites_test.dir/dataset_sites_test.cc.o.d"
  "dataset_sites_test"
  "dataset_sites_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dataset_sites_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
