# Empty dependencies file for econ_incentives_test.
# This may be replaced when dependencies are built.
