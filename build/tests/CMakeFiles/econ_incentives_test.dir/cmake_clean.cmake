file(REMOVE_RECURSE
  "CMakeFiles/econ_incentives_test.dir/econ_incentives_test.cc.o"
  "CMakeFiles/econ_incentives_test.dir/econ_incentives_test.cc.o.d"
  "econ_incentives_test"
  "econ_incentives_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/econ_incentives_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
