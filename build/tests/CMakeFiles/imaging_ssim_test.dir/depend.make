# Empty dependencies file for imaging_ssim_test.
# This may be replaced when dependencies are built.
