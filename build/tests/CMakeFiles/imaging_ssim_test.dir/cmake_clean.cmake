file(REMOVE_RECURSE
  "CMakeFiles/imaging_ssim_test.dir/imaging_ssim_test.cc.o"
  "CMakeFiles/imaging_ssim_test.dir/imaging_ssim_test.cc.o.d"
  "imaging_ssim_test"
  "imaging_ssim_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/imaging_ssim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
