file(REMOVE_RECURSE
  "CMakeFiles/web_dom_test.dir/web_dom_test.cc.o"
  "CMakeFiles/web_dom_test.dir/web_dom_test.cc.o.d"
  "web_dom_test"
  "web_dom_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/web_dom_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
