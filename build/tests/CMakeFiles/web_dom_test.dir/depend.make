# Empty dependencies file for web_dom_test.
# This may be replaced when dependencies are built.
