# Empty compiler generated dependencies file for net_plan_test.
# This may be replaced when dependencies are built.
