file(REMOVE_RECURSE
  "CMakeFiles/net_plan_test.dir/net_plan_test.cc.o"
  "CMakeFiles/net_plan_test.dir/net_plan_test.cc.o.d"
  "net_plan_test"
  "net_plan_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_plan_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
