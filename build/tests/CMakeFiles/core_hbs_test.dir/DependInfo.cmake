
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core_hbs_test.cc" "tests/CMakeFiles/core_hbs_test.dir/core_hbs_test.cc.o" "gcc" "tests/CMakeFiles/core_hbs_test.dir/core_hbs_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/aw4a_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aw4a_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aw4a_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aw4a_dataset.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aw4a_web.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aw4a_imaging.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aw4a_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aw4a_js.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aw4a_econ.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aw4a_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
