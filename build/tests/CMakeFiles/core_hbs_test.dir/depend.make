# Empty dependencies file for core_hbs_test.
# This may be replaced when dependencies are built.
