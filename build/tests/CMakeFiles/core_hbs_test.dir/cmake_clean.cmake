file(REMOVE_RECURSE
  "CMakeFiles/core_hbs_test.dir/core_hbs_test.cc.o"
  "CMakeFiles/core_hbs_test.dir/core_hbs_test.cc.o.d"
  "core_hbs_test"
  "core_hbs_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_hbs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
