# Empty dependencies file for imaging_msssim_test.
# This may be replaced when dependencies are built.
