file(REMOVE_RECURSE
  "CMakeFiles/imaging_msssim_test.dir/imaging_msssim_test.cc.o"
  "CMakeFiles/imaging_msssim_test.dir/imaging_msssim_test.cc.o.d"
  "imaging_msssim_test"
  "imaging_msssim_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/imaging_msssim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
