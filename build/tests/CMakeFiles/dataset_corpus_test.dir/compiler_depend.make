# Empty compiler generated dependencies file for dataset_corpus_test.
# This may be replaced when dependencies are built.
