file(REMOVE_RECURSE
  "CMakeFiles/dataset_corpus_test.dir/dataset_corpus_test.cc.o"
  "CMakeFiles/dataset_corpus_test.dir/dataset_corpus_test.cc.o.d"
  "dataset_corpus_test"
  "dataset_corpus_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dataset_corpus_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
