file(REMOVE_RECURSE
  "CMakeFiles/web_render_test.dir/web_render_test.cc.o"
  "CMakeFiles/web_render_test.dir/web_render_test.cc.o.d"
  "web_render_test"
  "web_render_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/web_render_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
