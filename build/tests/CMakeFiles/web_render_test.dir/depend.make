# Empty dependencies file for web_render_test.
# This may be replaced when dependencies are built.
