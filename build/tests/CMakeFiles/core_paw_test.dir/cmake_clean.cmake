file(REMOVE_RECURSE
  "CMakeFiles/core_paw_test.dir/core_paw_test.cc.o"
  "CMakeFiles/core_paw_test.dir/core_paw_test.cc.o.d"
  "core_paw_test"
  "core_paw_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_paw_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
