# Empty dependencies file for core_paw_test.
# This may be replaced when dependencies are built.
