file(REMOVE_RECURSE
  "CMakeFiles/imaging_codec_test.dir/imaging_codec_test.cc.o"
  "CMakeFiles/imaging_codec_test.dir/imaging_codec_test.cc.o.d"
  "imaging_codec_test"
  "imaging_codec_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/imaging_codec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
