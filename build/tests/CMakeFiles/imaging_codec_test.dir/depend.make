# Empty dependencies file for imaging_codec_test.
# This may be replaced when dependencies are built.
