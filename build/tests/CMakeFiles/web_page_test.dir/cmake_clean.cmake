file(REMOVE_RECURSE
  "CMakeFiles/web_page_test.dir/web_page_test.cc.o"
  "CMakeFiles/web_page_test.dir/web_page_test.cc.o.d"
  "web_page_test"
  "web_page_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/web_page_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
