# Empty compiler generated dependencies file for core_quality_test.
# This may be replaced when dependencies are built.
