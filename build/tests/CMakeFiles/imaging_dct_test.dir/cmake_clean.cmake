file(REMOVE_RECURSE
  "CMakeFiles/imaging_dct_test.dir/imaging_dct_test.cc.o"
  "CMakeFiles/imaging_dct_test.dir/imaging_dct_test.cc.o.d"
  "imaging_dct_test"
  "imaging_dct_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/imaging_dct_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
