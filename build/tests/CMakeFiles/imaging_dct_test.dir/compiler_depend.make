# Empty compiler generated dependencies file for imaging_dct_test.
# This may be replaced when dependencies are built.
