file(REMOVE_RECURSE
  "libaw4a_analysis.a"
)
