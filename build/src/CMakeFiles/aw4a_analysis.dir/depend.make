# Empty dependencies file for aw4a_analysis.
# This may be replaced when dependencies are built.
