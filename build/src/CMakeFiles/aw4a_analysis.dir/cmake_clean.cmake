file(REMOVE_RECURSE
  "CMakeFiles/aw4a_analysis.dir/analysis/experiments.cc.o"
  "CMakeFiles/aw4a_analysis.dir/analysis/experiments.cc.o.d"
  "CMakeFiles/aw4a_analysis.dir/analysis/export.cc.o"
  "CMakeFiles/aw4a_analysis.dir/analysis/export.cc.o.d"
  "CMakeFiles/aw4a_analysis.dir/analysis/report.cc.o"
  "CMakeFiles/aw4a_analysis.dir/analysis/report.cc.o.d"
  "libaw4a_analysis.a"
  "libaw4a_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aw4a_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
