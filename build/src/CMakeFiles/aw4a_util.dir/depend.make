# Empty dependencies file for aw4a_util.
# This may be replaced when dependencies are built.
