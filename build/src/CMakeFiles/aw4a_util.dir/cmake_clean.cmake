file(REMOVE_RECURSE
  "CMakeFiles/aw4a_util.dir/util/parallel.cc.o"
  "CMakeFiles/aw4a_util.dir/util/parallel.cc.o.d"
  "CMakeFiles/aw4a_util.dir/util/rng.cc.o"
  "CMakeFiles/aw4a_util.dir/util/rng.cc.o.d"
  "CMakeFiles/aw4a_util.dir/util/stats.cc.o"
  "CMakeFiles/aw4a_util.dir/util/stats.cc.o.d"
  "CMakeFiles/aw4a_util.dir/util/table.cc.o"
  "CMakeFiles/aw4a_util.dir/util/table.cc.o.d"
  "libaw4a_util.a"
  "libaw4a_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aw4a_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
