file(REMOVE_RECURSE
  "libaw4a_util.a"
)
