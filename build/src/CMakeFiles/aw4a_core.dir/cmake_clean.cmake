file(REMOVE_RECURSE
  "CMakeFiles/aw4a_core.dir/core/adjustable_js.cc.o"
  "CMakeFiles/aw4a_core.dir/core/adjustable_js.cc.o.d"
  "CMakeFiles/aw4a_core.dir/core/api.cc.o"
  "CMakeFiles/aw4a_core.dir/core/api.cc.o.d"
  "CMakeFiles/aw4a_core.dir/core/grid_search.cc.o"
  "CMakeFiles/aw4a_core.dir/core/grid_search.cc.o.d"
  "CMakeFiles/aw4a_core.dir/core/hbs.cc.o"
  "CMakeFiles/aw4a_core.dir/core/hbs.cc.o.d"
  "CMakeFiles/aw4a_core.dir/core/knapsack.cc.o"
  "CMakeFiles/aw4a_core.dir/core/knapsack.cc.o.d"
  "CMakeFiles/aw4a_core.dir/core/media_reduction.cc.o"
  "CMakeFiles/aw4a_core.dir/core/media_reduction.cc.o.d"
  "CMakeFiles/aw4a_core.dir/core/objective.cc.o"
  "CMakeFiles/aw4a_core.dir/core/objective.cc.o.d"
  "CMakeFiles/aw4a_core.dir/core/paw.cc.o"
  "CMakeFiles/aw4a_core.dir/core/paw.cc.o.d"
  "CMakeFiles/aw4a_core.dir/core/pipeline.cc.o"
  "CMakeFiles/aw4a_core.dir/core/pipeline.cc.o.d"
  "CMakeFiles/aw4a_core.dir/core/quality.cc.o"
  "CMakeFiles/aw4a_core.dir/core/quality.cc.o.d"
  "CMakeFiles/aw4a_core.dir/core/rbr.cc.o"
  "CMakeFiles/aw4a_core.dir/core/rbr.cc.o.d"
  "CMakeFiles/aw4a_core.dir/core/server.cc.o"
  "CMakeFiles/aw4a_core.dir/core/server.cc.o.d"
  "CMakeFiles/aw4a_core.dir/core/stage1.cc.o"
  "CMakeFiles/aw4a_core.dir/core/stage1.cc.o.d"
  "libaw4a_core.a"
  "libaw4a_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aw4a_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
