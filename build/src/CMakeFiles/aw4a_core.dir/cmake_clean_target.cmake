file(REMOVE_RECURSE
  "libaw4a_core.a"
)
