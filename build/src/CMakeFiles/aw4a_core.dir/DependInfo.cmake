
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/adjustable_js.cc" "src/CMakeFiles/aw4a_core.dir/core/adjustable_js.cc.o" "gcc" "src/CMakeFiles/aw4a_core.dir/core/adjustable_js.cc.o.d"
  "/root/repo/src/core/api.cc" "src/CMakeFiles/aw4a_core.dir/core/api.cc.o" "gcc" "src/CMakeFiles/aw4a_core.dir/core/api.cc.o.d"
  "/root/repo/src/core/grid_search.cc" "src/CMakeFiles/aw4a_core.dir/core/grid_search.cc.o" "gcc" "src/CMakeFiles/aw4a_core.dir/core/grid_search.cc.o.d"
  "/root/repo/src/core/hbs.cc" "src/CMakeFiles/aw4a_core.dir/core/hbs.cc.o" "gcc" "src/CMakeFiles/aw4a_core.dir/core/hbs.cc.o.d"
  "/root/repo/src/core/knapsack.cc" "src/CMakeFiles/aw4a_core.dir/core/knapsack.cc.o" "gcc" "src/CMakeFiles/aw4a_core.dir/core/knapsack.cc.o.d"
  "/root/repo/src/core/media_reduction.cc" "src/CMakeFiles/aw4a_core.dir/core/media_reduction.cc.o" "gcc" "src/CMakeFiles/aw4a_core.dir/core/media_reduction.cc.o.d"
  "/root/repo/src/core/objective.cc" "src/CMakeFiles/aw4a_core.dir/core/objective.cc.o" "gcc" "src/CMakeFiles/aw4a_core.dir/core/objective.cc.o.d"
  "/root/repo/src/core/paw.cc" "src/CMakeFiles/aw4a_core.dir/core/paw.cc.o" "gcc" "src/CMakeFiles/aw4a_core.dir/core/paw.cc.o.d"
  "/root/repo/src/core/pipeline.cc" "src/CMakeFiles/aw4a_core.dir/core/pipeline.cc.o" "gcc" "src/CMakeFiles/aw4a_core.dir/core/pipeline.cc.o.d"
  "/root/repo/src/core/quality.cc" "src/CMakeFiles/aw4a_core.dir/core/quality.cc.o" "gcc" "src/CMakeFiles/aw4a_core.dir/core/quality.cc.o.d"
  "/root/repo/src/core/rbr.cc" "src/CMakeFiles/aw4a_core.dir/core/rbr.cc.o" "gcc" "src/CMakeFiles/aw4a_core.dir/core/rbr.cc.o.d"
  "/root/repo/src/core/server.cc" "src/CMakeFiles/aw4a_core.dir/core/server.cc.o" "gcc" "src/CMakeFiles/aw4a_core.dir/core/server.cc.o.d"
  "/root/repo/src/core/stage1.cc" "src/CMakeFiles/aw4a_core.dir/core/stage1.cc.o" "gcc" "src/CMakeFiles/aw4a_core.dir/core/stage1.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/aw4a_web.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aw4a_dataset.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aw4a_imaging.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aw4a_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aw4a_js.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aw4a_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
