# Empty dependencies file for aw4a_core.
# This may be replaced when dependencies are built.
