file(REMOVE_RECURSE
  "CMakeFiles/aw4a_js.dir/js/callgraph.cc.o"
  "CMakeFiles/aw4a_js.dir/js/callgraph.cc.o.d"
  "CMakeFiles/aw4a_js.dir/js/muzeel.cc.o"
  "CMakeFiles/aw4a_js.dir/js/muzeel.cc.o.d"
  "CMakeFiles/aw4a_js.dir/js/script.cc.o"
  "CMakeFiles/aw4a_js.dir/js/script.cc.o.d"
  "libaw4a_js.a"
  "libaw4a_js.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aw4a_js.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
