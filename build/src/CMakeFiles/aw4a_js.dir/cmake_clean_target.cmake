file(REMOVE_RECURSE
  "libaw4a_js.a"
)
