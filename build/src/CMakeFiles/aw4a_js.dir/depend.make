# Empty dependencies file for aw4a_js.
# This may be replaced when dependencies are built.
