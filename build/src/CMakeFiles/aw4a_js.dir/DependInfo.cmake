
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/js/callgraph.cc" "src/CMakeFiles/aw4a_js.dir/js/callgraph.cc.o" "gcc" "src/CMakeFiles/aw4a_js.dir/js/callgraph.cc.o.d"
  "/root/repo/src/js/muzeel.cc" "src/CMakeFiles/aw4a_js.dir/js/muzeel.cc.o" "gcc" "src/CMakeFiles/aw4a_js.dir/js/muzeel.cc.o.d"
  "/root/repo/src/js/script.cc" "src/CMakeFiles/aw4a_js.dir/js/script.cc.o" "gcc" "src/CMakeFiles/aw4a_js.dir/js/script.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/aw4a_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
