
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dataset/corpus.cc" "src/CMakeFiles/aw4a_dataset.dir/dataset/corpus.cc.o" "gcc" "src/CMakeFiles/aw4a_dataset.dir/dataset/corpus.cc.o.d"
  "/root/repo/src/dataset/countries.cc" "src/CMakeFiles/aw4a_dataset.dir/dataset/countries.cc.o" "gcc" "src/CMakeFiles/aw4a_dataset.dir/dataset/countries.cc.o.d"
  "/root/repo/src/dataset/httparchive.cc" "src/CMakeFiles/aw4a_dataset.dir/dataset/httparchive.cc.o" "gcc" "src/CMakeFiles/aw4a_dataset.dir/dataset/httparchive.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/aw4a_web.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aw4a_imaging.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aw4a_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aw4a_js.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aw4a_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
