file(REMOVE_RECURSE
  "CMakeFiles/aw4a_dataset.dir/dataset/corpus.cc.o"
  "CMakeFiles/aw4a_dataset.dir/dataset/corpus.cc.o.d"
  "CMakeFiles/aw4a_dataset.dir/dataset/countries.cc.o"
  "CMakeFiles/aw4a_dataset.dir/dataset/countries.cc.o.d"
  "CMakeFiles/aw4a_dataset.dir/dataset/httparchive.cc.o"
  "CMakeFiles/aw4a_dataset.dir/dataset/httparchive.cc.o.d"
  "libaw4a_dataset.a"
  "libaw4a_dataset.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aw4a_dataset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
