file(REMOVE_RECURSE
  "libaw4a_dataset.a"
)
