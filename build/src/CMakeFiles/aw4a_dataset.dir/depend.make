# Empty dependencies file for aw4a_dataset.
# This may be replaced when dependencies are built.
