# Empty dependencies file for aw4a_web.
# This may be replaced when dependencies are built.
