file(REMOVE_RECURSE
  "libaw4a_web.a"
)
