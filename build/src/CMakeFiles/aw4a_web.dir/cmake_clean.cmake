file(REMOVE_RECURSE
  "CMakeFiles/aw4a_web.dir/web/bot.cc.o"
  "CMakeFiles/aw4a_web.dir/web/bot.cc.o.d"
  "CMakeFiles/aw4a_web.dir/web/dom.cc.o"
  "CMakeFiles/aw4a_web.dir/web/dom.cc.o.d"
  "CMakeFiles/aw4a_web.dir/web/media.cc.o"
  "CMakeFiles/aw4a_web.dir/web/media.cc.o.d"
  "CMakeFiles/aw4a_web.dir/web/object.cc.o"
  "CMakeFiles/aw4a_web.dir/web/object.cc.o.d"
  "CMakeFiles/aw4a_web.dir/web/page.cc.o"
  "CMakeFiles/aw4a_web.dir/web/page.cc.o.d"
  "CMakeFiles/aw4a_web.dir/web/render.cc.o"
  "CMakeFiles/aw4a_web.dir/web/render.cc.o.d"
  "libaw4a_web.a"
  "libaw4a_web.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aw4a_web.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
