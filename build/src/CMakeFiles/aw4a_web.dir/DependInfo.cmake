
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/web/bot.cc" "src/CMakeFiles/aw4a_web.dir/web/bot.cc.o" "gcc" "src/CMakeFiles/aw4a_web.dir/web/bot.cc.o.d"
  "/root/repo/src/web/dom.cc" "src/CMakeFiles/aw4a_web.dir/web/dom.cc.o" "gcc" "src/CMakeFiles/aw4a_web.dir/web/dom.cc.o.d"
  "/root/repo/src/web/media.cc" "src/CMakeFiles/aw4a_web.dir/web/media.cc.o" "gcc" "src/CMakeFiles/aw4a_web.dir/web/media.cc.o.d"
  "/root/repo/src/web/object.cc" "src/CMakeFiles/aw4a_web.dir/web/object.cc.o" "gcc" "src/CMakeFiles/aw4a_web.dir/web/object.cc.o.d"
  "/root/repo/src/web/page.cc" "src/CMakeFiles/aw4a_web.dir/web/page.cc.o" "gcc" "src/CMakeFiles/aw4a_web.dir/web/page.cc.o.d"
  "/root/repo/src/web/render.cc" "src/CMakeFiles/aw4a_web.dir/web/render.cc.o" "gcc" "src/CMakeFiles/aw4a_web.dir/web/render.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/aw4a_util.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aw4a_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aw4a_imaging.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aw4a_js.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
