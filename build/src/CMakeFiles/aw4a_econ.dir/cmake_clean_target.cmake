file(REMOVE_RECURSE
  "libaw4a_econ.a"
)
