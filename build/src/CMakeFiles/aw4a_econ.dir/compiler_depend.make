# Empty compiler generated dependencies file for aw4a_econ.
# This may be replaced when dependencies are built.
