file(REMOVE_RECURSE
  "CMakeFiles/aw4a_econ.dir/econ/incentives.cc.o"
  "CMakeFiles/aw4a_econ.dir/econ/incentives.cc.o.d"
  "CMakeFiles/aw4a_econ.dir/econ/ratings.cc.o"
  "CMakeFiles/aw4a_econ.dir/econ/ratings.cc.o.d"
  "CMakeFiles/aw4a_econ.dir/econ/user_study.cc.o"
  "CMakeFiles/aw4a_econ.dir/econ/user_study.cc.o.d"
  "CMakeFiles/aw4a_econ.dir/econ/utility.cc.o"
  "CMakeFiles/aw4a_econ.dir/econ/utility.cc.o.d"
  "libaw4a_econ.a"
  "libaw4a_econ.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aw4a_econ.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
