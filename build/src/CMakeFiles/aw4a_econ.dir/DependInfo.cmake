
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/econ/incentives.cc" "src/CMakeFiles/aw4a_econ.dir/econ/incentives.cc.o" "gcc" "src/CMakeFiles/aw4a_econ.dir/econ/incentives.cc.o.d"
  "/root/repo/src/econ/ratings.cc" "src/CMakeFiles/aw4a_econ.dir/econ/ratings.cc.o" "gcc" "src/CMakeFiles/aw4a_econ.dir/econ/ratings.cc.o.d"
  "/root/repo/src/econ/user_study.cc" "src/CMakeFiles/aw4a_econ.dir/econ/user_study.cc.o" "gcc" "src/CMakeFiles/aw4a_econ.dir/econ/user_study.cc.o.d"
  "/root/repo/src/econ/utility.cc" "src/CMakeFiles/aw4a_econ.dir/econ/utility.cc.o" "gcc" "src/CMakeFiles/aw4a_econ.dir/econ/utility.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/aw4a_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
