# Empty dependencies file for aw4a_baselines.
# This may be replaced when dependencies are built.
