file(REMOVE_RECURSE
  "libaw4a_baselines.a"
)
