file(REMOVE_RECURSE
  "CMakeFiles/aw4a_baselines.dir/baselines/baseline.cc.o"
  "CMakeFiles/aw4a_baselines.dir/baselines/baseline.cc.o.d"
  "CMakeFiles/aw4a_baselines.dir/baselines/brave.cc.o"
  "CMakeFiles/aw4a_baselines.dir/baselines/brave.cc.o.d"
  "CMakeFiles/aw4a_baselines.dir/baselines/freebasics.cc.o"
  "CMakeFiles/aw4a_baselines.dir/baselines/freebasics.cc.o.d"
  "CMakeFiles/aw4a_baselines.dir/baselines/operamini.cc.o"
  "CMakeFiles/aw4a_baselines.dir/baselines/operamini.cc.o.d"
  "CMakeFiles/aw4a_baselines.dir/baselines/weblight.cc.o"
  "CMakeFiles/aw4a_baselines.dir/baselines/weblight.cc.o.d"
  "libaw4a_baselines.a"
  "libaw4a_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aw4a_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
