file(REMOVE_RECURSE
  "libaw4a_net.a"
)
