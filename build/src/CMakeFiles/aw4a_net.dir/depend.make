# Empty dependencies file for aw4a_net.
# This may be replaced when dependencies are built.
