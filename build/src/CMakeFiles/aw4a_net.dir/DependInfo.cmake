
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/cache.cc" "src/CMakeFiles/aw4a_net.dir/net/cache.cc.o" "gcc" "src/CMakeFiles/aw4a_net.dir/net/cache.cc.o.d"
  "/root/repo/src/net/compress.cc" "src/CMakeFiles/aw4a_net.dir/net/compress.cc.o" "gcc" "src/CMakeFiles/aw4a_net.dir/net/compress.cc.o.d"
  "/root/repo/src/net/http.cc" "src/CMakeFiles/aw4a_net.dir/net/http.cc.o" "gcc" "src/CMakeFiles/aw4a_net.dir/net/http.cc.o.d"
  "/root/repo/src/net/plan.cc" "src/CMakeFiles/aw4a_net.dir/net/plan.cc.o" "gcc" "src/CMakeFiles/aw4a_net.dir/net/plan.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/aw4a_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
