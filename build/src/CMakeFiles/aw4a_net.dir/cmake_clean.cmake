file(REMOVE_RECURSE
  "CMakeFiles/aw4a_net.dir/net/cache.cc.o"
  "CMakeFiles/aw4a_net.dir/net/cache.cc.o.d"
  "CMakeFiles/aw4a_net.dir/net/compress.cc.o"
  "CMakeFiles/aw4a_net.dir/net/compress.cc.o.d"
  "CMakeFiles/aw4a_net.dir/net/http.cc.o"
  "CMakeFiles/aw4a_net.dir/net/http.cc.o.d"
  "CMakeFiles/aw4a_net.dir/net/plan.cc.o"
  "CMakeFiles/aw4a_net.dir/net/plan.cc.o.d"
  "libaw4a_net.a"
  "libaw4a_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aw4a_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
