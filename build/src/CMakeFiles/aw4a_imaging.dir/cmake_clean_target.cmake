file(REMOVE_RECURSE
  "libaw4a_imaging.a"
)
