file(REMOVE_RECURSE
  "CMakeFiles/aw4a_imaging.dir/imaging/codec.cc.o"
  "CMakeFiles/aw4a_imaging.dir/imaging/codec.cc.o.d"
  "CMakeFiles/aw4a_imaging.dir/imaging/codec_jpeg.cc.o"
  "CMakeFiles/aw4a_imaging.dir/imaging/codec_jpeg.cc.o.d"
  "CMakeFiles/aw4a_imaging.dir/imaging/codec_png.cc.o"
  "CMakeFiles/aw4a_imaging.dir/imaging/codec_png.cc.o.d"
  "CMakeFiles/aw4a_imaging.dir/imaging/codec_webp.cc.o"
  "CMakeFiles/aw4a_imaging.dir/imaging/codec_webp.cc.o.d"
  "CMakeFiles/aw4a_imaging.dir/imaging/dct.cc.o"
  "CMakeFiles/aw4a_imaging.dir/imaging/dct.cc.o.d"
  "CMakeFiles/aw4a_imaging.dir/imaging/raster.cc.o"
  "CMakeFiles/aw4a_imaging.dir/imaging/raster.cc.o.d"
  "CMakeFiles/aw4a_imaging.dir/imaging/resize.cc.o"
  "CMakeFiles/aw4a_imaging.dir/imaging/resize.cc.o.d"
  "CMakeFiles/aw4a_imaging.dir/imaging/ssim.cc.o"
  "CMakeFiles/aw4a_imaging.dir/imaging/ssim.cc.o.d"
  "CMakeFiles/aw4a_imaging.dir/imaging/synth.cc.o"
  "CMakeFiles/aw4a_imaging.dir/imaging/synth.cc.o.d"
  "CMakeFiles/aw4a_imaging.dir/imaging/variants.cc.o"
  "CMakeFiles/aw4a_imaging.dir/imaging/variants.cc.o.d"
  "libaw4a_imaging.a"
  "libaw4a_imaging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aw4a_imaging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
