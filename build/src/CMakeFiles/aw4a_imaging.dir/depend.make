# Empty dependencies file for aw4a_imaging.
# This may be replaced when dependencies are built.
