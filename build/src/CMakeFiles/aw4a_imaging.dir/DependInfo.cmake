
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/imaging/codec.cc" "src/CMakeFiles/aw4a_imaging.dir/imaging/codec.cc.o" "gcc" "src/CMakeFiles/aw4a_imaging.dir/imaging/codec.cc.o.d"
  "/root/repo/src/imaging/codec_jpeg.cc" "src/CMakeFiles/aw4a_imaging.dir/imaging/codec_jpeg.cc.o" "gcc" "src/CMakeFiles/aw4a_imaging.dir/imaging/codec_jpeg.cc.o.d"
  "/root/repo/src/imaging/codec_png.cc" "src/CMakeFiles/aw4a_imaging.dir/imaging/codec_png.cc.o" "gcc" "src/CMakeFiles/aw4a_imaging.dir/imaging/codec_png.cc.o.d"
  "/root/repo/src/imaging/codec_webp.cc" "src/CMakeFiles/aw4a_imaging.dir/imaging/codec_webp.cc.o" "gcc" "src/CMakeFiles/aw4a_imaging.dir/imaging/codec_webp.cc.o.d"
  "/root/repo/src/imaging/dct.cc" "src/CMakeFiles/aw4a_imaging.dir/imaging/dct.cc.o" "gcc" "src/CMakeFiles/aw4a_imaging.dir/imaging/dct.cc.o.d"
  "/root/repo/src/imaging/raster.cc" "src/CMakeFiles/aw4a_imaging.dir/imaging/raster.cc.o" "gcc" "src/CMakeFiles/aw4a_imaging.dir/imaging/raster.cc.o.d"
  "/root/repo/src/imaging/resize.cc" "src/CMakeFiles/aw4a_imaging.dir/imaging/resize.cc.o" "gcc" "src/CMakeFiles/aw4a_imaging.dir/imaging/resize.cc.o.d"
  "/root/repo/src/imaging/ssim.cc" "src/CMakeFiles/aw4a_imaging.dir/imaging/ssim.cc.o" "gcc" "src/CMakeFiles/aw4a_imaging.dir/imaging/ssim.cc.o.d"
  "/root/repo/src/imaging/synth.cc" "src/CMakeFiles/aw4a_imaging.dir/imaging/synth.cc.o" "gcc" "src/CMakeFiles/aw4a_imaging.dir/imaging/synth.cc.o.d"
  "/root/repo/src/imaging/variants.cc" "src/CMakeFiles/aw4a_imaging.dir/imaging/variants.cc.o" "gcc" "src/CMakeFiles/aw4a_imaging.dir/imaging/variants.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/aw4a_util.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aw4a_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
