// transcoding_server: the origin-server view of AW4A (paper §5.2/§5.5).
//
// Builds a page's tier ladder once, then answers a series of HTTP requests —
// shown on the wire, exactly as a browser and a proxyless origin would
// exchange them. The `Save-Data` client hint (RFC 8674), a CDN geo hint, and
// the AW4A savings-preference header drive the Fig. 6 control flow.
// Fault drills: set AW4A_FAULTS (e.g. AW4A_FAULTS=codec.jpeg.encode:0.1 or
// solver.hbs:1.0) to inject deterministic failures and watch the server
// degrade — fall back to Stage-1 tiers, borrow coarser tiers, or serve the
// original page with an AW4A-Degraded header — instead of crashing.
#include <iostream>

#include "core/server.h"
#include "dataset/corpus.h"
#include "util/fault.h"
#include "util/rng.h"
#include "util/table.h"

int main() {
  using namespace aw4a;
  fault::configure_from_env();

  dataset::CorpusGenerator gen(dataset::CorpusOptions{.seed = 99, .rich = true});
  Rng rng(99);
  const web::WebPage page = gen.make_page(rng, from_mb(2.3), gen.global_profile());

  core::DeveloperConfig config;
  config.tier_reductions = {1.5, 3.0, 6.0};
  config.min_image_ssim = 0.8;
  config.measure_qfs = false;
  const core::TranscodingServer server(page, config, net::PlanType::kDataVoiceLowUsage);

  std::cout << "origin holds " << format_bytes(page.transfer_size()) << " page + "
            << server.tiers().size() << " pre-built tiers\n";
  if (server.degraded()) {
    std::cout << "!! running degraded: " << server.degraded_reason() << "\n";
  }
  std::cout << "\n";

  struct Scenario {
    const char* label;
    net::HttpRequest request;
  };
  std::vector<Scenario> scenarios;
  {
    net::HttpRequest r;
    r.path = "/";
    scenarios.push_back({"unconstrained user (no hints)", r});
  }
  {
    net::HttpRequest r;
    r.path = "/";
    r.headers = {{"Save-Data", "on"}, {"X-Geo-Country", "ET"}};
    scenarios.push_back({"data saver in Ethiopia (country sharing on)", r});
  }
  {
    net::HttpRequest r;
    r.path = "/";
    r.headers = {{"Save-Data", "on"}, {"X-Geo-Country", "DE"}};
    scenarios.push_back({"data saver in Germany (already affordable)", r});
  }
  {
    net::HttpRequest r;
    r.path = "/";
    r.headers = {{"Save-Data", "on"}, {"AW4A-Savings", "70"}};
    scenarios.push_back({"privacy-minded user, wants ~70% savings", r});
  }

  for (const auto& scenario : scenarios) {
    std::cout << "### " << scenario.label << "\n";
    const std::string wire_request = net::serialize(scenario.request);
    std::cout << "> " << wire_request.substr(0, wire_request.find("\r\n")) << "\n";
    for (const auto& h : scenario.request.headers) {
      std::cout << "> " << h.name << ": " << h.value << "\n";
    }
    // Over the wire and back, as a real deployment would.
    const auto parsed = net::parse_request(wire_request);
    const net::HttpResponse response = server.handle(*parsed);
    std::cout << "< HTTP/1.1 " << response.status << " " << response.reason << "\n";
    for (const auto& h : response.headers) {
      std::cout << "< " << h.name << ": " << h.value << "\n";
    }
    std::cout << "< Content-Length: " << response.content_length << "  ("
              << format_bytes(response.content_length) << ")\n\n";
  }
  std::cout << "note: no proxy ever saw these pages — transcoding happened at the\n"
               "origin, preserving TLS end to end (the paper's G2).\n";
  return 0;
}
