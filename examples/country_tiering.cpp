// country_tiering: the full operator-to-user loop of the paper's §5.
//
// Computes PAW across a set of countries, pre-builds low-complexity tiers of
// a page, and shows which version the Fig. 6 control flow serves to users
// with different browser profiles.
#include <algorithm>
#include <iostream>

#include "core/api.h"
#include "dataset/corpus.h"
#include "util/rng.h"
#include "util/table.h"

int main() {
  using namespace aw4a;

  // PAW overview for a few countries across plans.
  TextTable paw_table({"country", "PAW(DO)", "PAW(DVLU)", "PAW(DVHU)", "needs reduction"});
  for (const char* name :
       {"United States", "Pakistan", "Uzbekistan", "Kenya", "Ethiopia", "Honduras"}) {
    const dataset::Country* c = dataset::find_country(name);
    if (c == nullptr || !c->has_price_data) continue;
    const double p_do = core::paw_index(*c, net::PlanType::kDataOnly);
    const double p_dvlu = core::paw_index(*c, net::PlanType::kDataVoiceLowUsage);
    const double p_dvhu = core::paw_index(*c, net::PlanType::kDataVoiceHighUsage);
    const double worst = std::max({p_do, p_dvlu, p_dvhu});
    paw_table.add_row({name, fmt(p_do, 2), fmt(p_dvlu, 2), fmt(p_dvhu, 2),
                       worst > 1.0 ? fmt(worst, 2) + "x" : "no"});
  }
  std::cout << "PAW index (>1 means the country misses the 2%-of-GNI target):\n"
            << paw_table.render(2) << '\n';

  // Build tiers for one page.
  dataset::CorpusGenerator generator(dataset::CorpusOptions{.seed = 7, .rich = true});
  Rng rng(7);
  const web::WebPage page =
      generator.make_page(rng, from_mb(2.4), generator.global_profile());
  core::DeveloperConfig config;
  config.tier_reductions = {1.25, 1.5, 3.0, 6.0};
  config.min_image_ssim = 0.8;
  config.measure_qfs = false;  // keep the demo quick
  const core::Aw4aPipeline pipeline(config);
  const auto tiers = pipeline.build_tiers(page);

  TextTable tier_table({"tier", "requested", "achieved", "bytes", "QSS", "met"});
  for (std::size_t i = 0; i < tiers.size(); ++i) {
    tier_table.add_row({std::to_string(i), fmt(tiers[i].requested_reduction, 2) + "x",
                        fmt(tiers[i].achieved_reduction(), 2) + "x",
                        format_bytes(tiers[i].result.result_bytes),
                        fmt(tiers[i].result.quality.qss, 3),
                        tiers[i].result.met_target ? "yes" : "no"});
  }
  std::cout << "pre-generated tiers of a " << format_bytes(page.transfer_size())
            << " page:\n"
            << tier_table.render(2) << '\n';

  // Serve three users through the Fig. 6 control flow.
  struct Persona {
    const char* label;
    core::UserProfile profile;
  };
  std::vector<Persona> personas;
  personas.push_back({"default (data saving off)", {}});
  core::UserProfile honduran;
  honduran.data_saving_on = true;
  honduran.country_sharing_on = true;
  honduran.plan = net::PlanType::kDataVoiceLowUsage;
  honduran.country = dataset::find_country("Honduras");
  personas.push_back({"Honduras, country sharing on", honduran});
  core::UserProfile saver;
  saver.data_saving_on = true;
  saver.country_sharing_on = false;
  saver.preferred_savings_pct = 65.0;
  personas.push_back({"privacy-minded, wants ~65% savings", saver});

  for (const auto& persona : personas) {
    const auto decision = core::decide_version(persona.profile, tiers);
    std::cout << "user [" << persona.label << "] -> ";
    switch (decision.kind) {
      case core::ServeDecision::Kind::kOriginal:
        std::cout << "original page";
        break;
      case core::ServeDecision::Kind::kPawTier:
      case core::ServeDecision::Kind::kPreferenceTier:
        std::cout << "tier " << decision.tier_index << " ("
                  << format_bytes(tiers[decision.tier_index].result.result_bytes) << ")";
        break;
    }
    std::cout << "  [" << decision.reason << "]\n";
  }
  return 0;
}
