// Quickstart: transcode one page to a byte budget with AW4A.
//
//   $ ./quickstart [target_fraction]
//
// Builds a synthetic rich page (every image carries a real raster, every
// script a call-graph model), asks the AW4A pipeline for a version at
// `target_fraction` of the original size (default 0.6), and prints what the
// optimizer decided and what it cost in quality.
#include <cstdlib>
#include <iostream>

#include "core/pipeline.h"
#include "dataset/corpus.h"
#include "util/rng.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace aw4a;
  const double fraction = argc > 1 ? std::atof(argv[1]) : 0.6;
  if (fraction <= 0.0 || fraction > 1.0) {
    std::cerr << "usage: quickstart [target_fraction in (0,1]]\n";
    return 1;
  }

  // 1. A page. Real deployments parse a crawled page; here we synthesize one
  //    calibrated to the paper's Alexa-top-1000 statistics.
  dataset::CorpusGenerator generator(dataset::CorpusOptions{.seed = 1, .rich = true});
  Rng rng(1);
  const web::WebPage page =
      generator.make_page(rng, from_mb(2.2), generator.global_profile());
  std::cout << "page: " << page.objects.size() << " objects, "
            << format_bytes(page.transfer_size()) << " on the wire\n";

  TextTable breakdown({"type", "bytes", "objects"});
  for (web::ObjectType t : web::kAllObjectTypes) {
    breakdown.add_row({to_string(t), format_bytes(page.transfer_size(t)),
                       std::to_string(page.count(t))});
  }
  std::cout << breakdown.render(2) << '\n';

  // 2. Transcode: Stage-1 lossless pass, then HBS if the target is unmet.
  core::DeveloperConfig config;
  config.min_image_ssim = 0.9;  // Qt: no image below "fair" quality
  const core::Aw4aPipeline pipeline(config);
  const Bytes target =
      static_cast<Bytes>(static_cast<double>(page.transfer_size()) * fraction);
  const core::TranscodeResult result = pipeline.transcode_to_target(page, target);

  // 3. Report.
  std::cout << "target:    " << format_bytes(target) << "\n";
  std::cout << "result:    " << format_bytes(result.result_bytes) << "  ("
            << (result.met_target ? "met" : "MISSED — quality floor reached") << ")\n";
  std::cout << "algorithm: " << result.algorithm << "\n";
  std::cout << "quality:   QSS=" << fmt(result.quality.qss, 4)
            << "  QFS=" << fmt(result.quality.qfs, 4)
            << "  overall=" << fmt(result.quality.quality, 4) << "\n";
  std::cout << "decisions: " << result.served.images.size() << " images re-encoded, "
            << result.served.scripts.size() << " scripts reduced, "
            << result.served.retextured.size() << " text/font resources minified\n";
  std::cout << "elapsed:   " << fmt(result.elapsed_seconds, 3) << " s\n";
  return 0;
}
