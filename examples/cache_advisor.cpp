// cache_advisor: the paper's §2.2 caching methodology as a tool.
//
// Simulates the 12-hour/2-week visit schedule against (a) an infinite cache
// with Cache-Control expiry and (b) entry-level device caches (Nexus 5 vs
// Nokia 1 capacities), and reports how much of a page's byte cost caching
// actually removes — and how little that changes PAW.
#include <iostream>

#include "core/paw.h"
#include "dataset/corpus.h"
#include "net/cache.h"
#include "util/rng.h"
#include "util/table.h"

int main() {
  using namespace aw4a;

  dataset::CorpusGenerator generator;
  const auto pages = generator.global_pages(25);  // the paper's 25-site rotation
  const net::VisitSchedule schedule{};

  // (a) Infinite cache, per page.
  double cold = 0;
  double cached = 0;
  for (const auto& page : pages) {
    cold += static_cast<double>(page.transfer_size());
    cached += page.cached_transfer_size();
  }
  const double infinite_saving = 1.0 - cached / cold;
  std::cout << "infinite cache + Cache-Control expiry over "
            << schedule.visit_count() << " visits:\n"
            << "  mean cold page:   " << format_bytes(static_cast<Bytes>(cold / 25)) << '\n'
            << "  mean cached cost: " << format_bytes(static_cast<Bytes>(cached / 25))
            << "  (saves " << fmt(infinite_saving * 100, 1)
            << "%; paper measured 58.7%)\n\n";

  // (b) Device caches shared across the 25-site rotation.
  std::vector<std::vector<net::CacheItem>> item_pages;
  for (const auto& page : pages) {
    std::vector<net::CacheItem> items;
    for (const auto& object : page.objects) items.push_back(web::to_cache_item(object));
    item_pages.push_back(std::move(items));
  }
  TextTable device_table({"device", "cache budget", "bytes saved", "paper"});
  for (const auto& device : {net::nexus5(), net::nokia1()}) {
    const double saving = net::simulate_device_cache(item_pages, schedule, device);
    device_table.add_row({device.name, format_bytes(device.cache_capacity),
                          fmt(saving * 100, 1) + "%",
                          device.flush_probability < 0.1 ? "60.9%" : "21.4%"});
  }
  std::cout << "device-bounded caches (LRU over the same rotation):\n"
            << device_table.render(2) << '\n';

  // (c) Caching barely moves PAW (paper §3.2): both the country's average
  // and the global benchmark shrink together.
  TextTable paw_table({"country", "PAW cold", "PAW cached"});
  for (const char* name : {"Kenya", "Bolivia", "Honduras"}) {
    const dataset::Country* c = dataset::find_country(name);
    if (c == nullptr) continue;
    paw_table.add_row({name, fmt(core::paw_index(*c, net::PlanType::kDataOnly, false), 2),
                       fmt(core::paw_index(*c, net::PlanType::kDataOnly, true), 2)});
  }
  std::cout << "caching does not fix affordability (PAW is a ratio):\n"
            << paw_table.render(2);
  return 0;
}
