// aw4a_cli: a command-line front end to the library, the interface a
// downstream operator would script against.
//
//   aw4a_cli countries [--plan DO|DVLU|DVHU]     PAW table for the study set
//   aw4a_cli paw <country> [plan]                one country's numbers
//   aw4a_cli transcode [--mb M] [--keep F] [--qt Q] [--grid] [--adjustable-js]
//   aw4a_cli tiers [--mb M]                      build the default tier ladder
//   aw4a_cli whatif <country>                    resource-removal estimates
//
// Any command accepts --faults SPEC (or the AW4A_FAULTS environment
// variable) to arm deterministic fault injection, e.g.
//   aw4a_cli tiers --faults codec.jpeg.encode:0.2,seed=7
#include <cstring>
#include <iostream>
#include <string>

#include "analysis/experiments.h"
#include "js/muzeel.h"
#include "core/api.h"
#include "util/fault.h"
#include "util/table.h"

namespace {

using namespace aw4a;

double arg_value(int argc, char** argv, const char* flag, double fallback) {
  for (int i = 0; i < argc - 1; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return std::atof(argv[i + 1]);
  }
  return fallback;
}

bool has_flag(int argc, char** argv, const char* flag) {
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return true;
  }
  return false;
}

net::PlanType parse_plan(const std::string& code) {
  if (code == "DVLU") return net::PlanType::kDataVoiceLowUsage;
  if (code == "DVHU") return net::PlanType::kDataVoiceHighUsage;
  return net::PlanType::kDataOnly;
}

int cmd_countries(int argc, char** argv) {
  const net::PlanType plan =
      parse_plan(has_flag(argc, argv, "--plan") ? argv[argc - 1] : "DO");
  TextTable table({"country", "region", "price %GNI", "avg page", "PAW", "reduce to"});
  for (const dataset::Country* c : dataset::countries_with_prices()) {
    const double paw = core::paw_index(*c, plan);
    table.add_row({std::string(c->name), c->developing ? "developing" : "developed",
                   fmt(c->price_pct(plan), 2), fmt(c->mean_page_mb, 2) + " MB", fmt(paw, 2),
                   paw > 1.0 ? fmt(1.0 / paw * 100, 0) + "%" : "-"});
  }
  std::cout << "plan: " << net::plan_name(plan) << "\n" << table.render(2);
  return 0;
}

int cmd_paw(int argc, char** argv) {
  if (argc < 1) {
    std::cerr << "usage: aw4a_cli paw <country> [DO|DVLU|DVHU]\n";
    return 1;
  }
  const dataset::Country* c = dataset::find_country(argv[0]);
  if (c == nullptr) {
    std::cerr << "unknown country: " << argv[0] << '\n';
    return 1;
  }
  if (!c->has_price_data) {
    std::cerr << c->name << " has no ITU price data (the paper excludes it too)\n";
    return 1;
  }
  const net::PlanType plan = parse_plan(argc > 1 ? argv[1] : "DO");
  const double paw = core::paw_index(*c, plan);
  std::cout << c->name << " (" << net::plan_code(plan) << ")\n"
            << "  price:            " << fmt(c->price_pct(plan), 2) << "% of GNI per capita\n"
            << "  avg page size:    " << fmt(c->mean_page_mb, 2) << " MB\n"
            << "  PAW index:        " << fmt(paw, 2) << (paw > 1 ? "  (misses target)" : "  (meets target)")
            << '\n'
            << "  accesses @2%:     "
            << fmt(core::accesses_within_target(c->price_pct(plan), plan, c->mean_page_mb), 0)
            << " pages/month\n";
  if (paw > 1.0) {
    std::cout << "  target page size: " << fmt(core::target_avg_page_mb(c->price_pct(plan)), 2)
              << " MB (reduce pages to " << fmt(1.0 / paw * 100, 0) << "%)\n";
  }
  return 0;
}

core::DeveloperConfig config_from_args(int argc, char** argv) {
  core::DeveloperConfig config;
  config.min_image_ssim = arg_value(argc, argv, "--qt", 0.9);
  if (has_flag(argc, argv, "--grid")) {
    config.stage2 = core::DeveloperConfig::Stage2::kGridSearch;
  }
  if (has_flag(argc, argv, "--adjustable-js")) {
    config.js_strategy = core::HbsOptions::JsStrategy::kAdjustable;
  }
  config.measure_qfs = !has_flag(argc, argv, "--no-qfs");
  return config;
}

web::WebPage demo_page(double mb) {
  dataset::CorpusGenerator gen(dataset::CorpusOptions{.seed = 2023, .rich = true});
  Rng rng(2023);
  return gen.make_page(rng, from_mb(mb), gen.global_profile());
}

int cmd_transcode(int argc, char** argv) {
  const double mb = arg_value(argc, argv, "--mb", 2.2);
  const double keep = arg_value(argc, argv, "--keep", 0.6);
  const web::WebPage page = demo_page(mb);
  const core::Aw4aPipeline pipeline(config_from_args(argc, argv));
  const auto result = pipeline.transcode_to_target(
      page, static_cast<Bytes>(static_cast<double>(page.transfer_size()) * keep));
  std::cout << "page " << format_bytes(page.transfer_size()) << " -> "
            << format_bytes(result.result_bytes) << "  ["
            << (result.met_target ? "met" : "missed") << ", " << result.algorithm << "]\n"
            << "QSS=" << fmt(result.quality.qss, 4) << " QFS=" << fmt(result.quality.qfs, 4)
            << " quality=" << fmt(result.quality.quality, 4) << "  ("
            << fmt(result.elapsed_seconds, 2) << "s)\n";
  return result.met_target ? 0 : 2;
}

int cmd_tiers(int argc, char** argv) {
  const double mb = arg_value(argc, argv, "--mb", 2.2);
  const web::WebPage page = demo_page(mb);
  core::DeveloperConfig config = config_from_args(argc, argv);
  config.measure_qfs = false;
  const core::Aw4aPipeline pipeline(config);
  const auto tiers = pipeline.build_tiers(page);
  TextTable table({"tier", "requested", "achieved", "bytes", "QSS"});
  for (std::size_t i = 0; i < tiers.size(); ++i) {
    table.add_row({std::to_string(i), fmt(tiers[i].requested_reduction, 2) + "x",
                   fmt(tiers[i].achieved_reduction(), 2) + "x",
                   format_bytes(tiers[i].result.result_bytes),
                   fmt(tiers[i].result.quality.qss, 3)});
  }
  std::cout << table.render(2);
  return 0;
}

int cmd_coverage(int argc, char** argv) {
  const double mb = arg_value(argc, argv, "--mb", 2.2);
  const web::WebPage page = demo_page(mb);
  TextTable table({"script", "bytes", "functions", "dead", "dead bytes", "risky bytes"});
  Bytes total = 0;
  Bytes dead = 0;
  int idx = 0;
  for (const auto& o : page.objects) {
    if (o.script == nullptr) continue;
    const auto report = js::coverage(*o.script);
    total += report.total_bytes;
    dead += report.dead_bytes;
    table.add_row({"js-" + std::to_string(idx++), format_bytes(report.total_bytes),
                   std::to_string(report.total_functions),
                   std::to_string(report.dead_functions), format_bytes(report.dead_bytes),
                   format_bytes(report.risky_bytes)});
  }
  std::cout << table.render(2) << "total dead: " << format_bytes(dead) << " of "
            << format_bytes(total) << " ("
            << fmt(100.0 * static_cast<double>(dead) / static_cast<double>(total), 1)
            << "%)\n";
  return 0;
}

int cmd_whatif(int argc, char** argv) {
  if (argc < 1) {
    std::cerr << "usage: aw4a_cli whatif <country>\n";
    return 1;
  }
  const dataset::Country* c = dataset::find_country(argv[0]);
  if (c == nullptr) {
    std::cerr << "unknown country: " << argv[0] << '\n';
    return 1;
  }
  dataset::CorpusGenerator gen;
  const auto pages = gen.country_pages(*c, 60);
  double total = 0;
  double img = 0;
  double js = 0;
  for (const auto& p : pages) {
    total += static_cast<double>(p.transfer_size());
    img += static_cast<double>(p.transfer_size(web::ObjectType::kImage));
    js += static_cast<double>(p.transfer_size(web::ObjectType::kJs));
  }
  std::cout << c->name << " (60-page sample, mean " << fmt(total / 60 / 1e6, 2) << " MB)\n";
  TextTable table({"removal", "reduction"});
  table.add_row({"no images", fmt(total / (total - img), 2) + "x"});
  table.add_row({"no JS", fmt(total / (total - js), 2) + "x"});
  table.add_row({"no images+JS", fmt(total / (total - img - js), 2) + "x"});
  std::cout << table.render(2);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: aw4a_cli <countries|paw|transcode|tiers|whatif|coverage> [args]\n";
    return 1;
  }
  fault::configure_from_env();
  for (int i = 2; i < argc - 1; ++i) {
    if (std::strcmp(argv[i], "--faults") == 0) {
      std::string error;
      if (!fault::configure_from_string(argv[i + 1], &error)) {
        std::cerr << "bad --faults spec: " << error << '\n';
        return 1;
      }
    }
  }
  const std::string cmd = argv[1];
  if (cmd == "countries") return cmd_countries(argc - 2, argv + 2);
  if (cmd == "paw") return cmd_paw(argc - 2, argv + 2);
  if (cmd == "transcode") return cmd_transcode(argc - 2, argv + 2);
  if (cmd == "tiers") return cmd_tiers(argc - 2, argv + 2);
  if (cmd == "whatif") return cmd_whatif(argc - 2, argv + 2);
  if (cmd == "coverage") return cmd_coverage(argc - 2, argv + 2);
  std::cerr << "unknown command: " << cmd << '\n';
  return 1;
}
