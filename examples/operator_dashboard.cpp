// operator_dashboard: the developer-API view (paper §5.4).
//
// Shows how an operator's knobs change outcomes on their own corpus: the
// image quality threshold (Qt), the RBR heuristic weights, and the QSS/QFS
// weighting — the dials a news site vs. a web-app would set differently.
#include <iostream>

#include "core/pipeline.h"
#include "js/muzeel.h"
#include "dataset/corpus.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"

namespace {

struct Scenario {
  const char* label;
  aw4a::core::DeveloperConfig config;
};

}  // namespace

int main() {
  using namespace aw4a;

  // The operator's corpus: a handful of their most-visited pages.
  dataset::CorpusGenerator generator(dataset::CorpusOptions{.seed = 21, .rich = true});
  std::vector<web::WebPage> pages;
  Rng rng(21);
  for (int i = 0; i < 5; ++i) {
    pages.push_back(generator.make_page(rng, from_mb(1.6 + 0.3 * i),
                                        generator.global_profile()));
  }

  std::vector<Scenario> scenarios;
  {
    Scenario s{.label = "defaults (Qt=0.9, equal weights)", .config = {}};
    s.config.measure_qfs = false;
    scenarios.push_back(s);
  }
  {
    Scenario s{.label = "news site: looks first (Qt=0.95, QSS-weighted)", .config = {}};
    s.config.min_image_ssim = 0.95;
    s.config.quality_weights = {.qss = 0.8, .qfs = 0.2};
    s.config.measure_qfs = false;
    scenarios.push_back(s);
  }
  {
    Scenario s{.label = "data saver: deep cuts (Qt=0.8)", .config = {}};
    s.config.min_image_ssim = 0.8;
    s.config.measure_qfs = false;
    scenarios.push_back(s);
  }
  {
    Scenario s{.label = "area-only RBR heuristic (ablation)", .config = {}};
    s.config.rbr_area_weight = 1.0;
    s.config.rbr_bytes_efficiency_weight = 0.0;
    s.config.measure_qfs = false;
    scenarios.push_back(s);
  }
  {
    Scenario s{.label = "adjustable JS (footnote-27 extension)", .config = {}};
    s.config.js_strategy = core::HbsOptions::JsStrategy::kAdjustable;
    s.config.measure_qfs = false;
    scenarios.push_back(s);
  }

  // The coverage report an operator reads first: how much of the corpus's
  // JS is dead weight, and how much of that is risky to remove.
  {
    std::size_t scripts = 0;
    Bytes total = 0;
    Bytes dead = 0;
    Bytes risky = 0;
    for (const auto& page : pages) {
      for (const auto& o : page.objects) {
        if (o.script == nullptr) continue;
        const auto report = js::coverage(*o.script);
        ++scripts;
        total += report.total_bytes;
        dead += report.dead_bytes;
        risky += report.risky_bytes;
      }
    }
    std::cout << "JS coverage across the corpus: " << scripts << " scripts, "
              << format_bytes(total) << " source, " << format_bytes(dead)
              << " dead (" << fmt(100.0 * dead / std::max<Bytes>(total, 1), 1)
              << "%), of which " << format_bytes(risky)
              << " dynamically reachable (risky to remove)\n\n";
  }

  // §5.4 developer weights in action: protect each page's biggest image.
  for (auto& page : pages) {
    web::WebObject* hero = nullptr;
    for (auto& o : page.objects) {
      if (o.type == web::ObjectType::kImage &&
          (hero == nullptr || o.transfer_bytes > hero->transfer_bytes)) {
        hero = &o;
      }
    }
    if (hero != nullptr) hero->developer_weight = 3.0;  // reduce the hero last
  }


  TextTable table({"scenario", "met", "mean QSS", "mean bytes", "mean reduction"});
  for (const auto& scenario : scenarios) {
    const core::Aw4aPipeline pipeline(scenario.config);
    int met = 0;
    std::vector<double> qss;
    std::vector<double> bytes_mb;
    std::vector<double> reductions;
    for (const auto& page : pages) {
      const Bytes target = page.transfer_size() / 2;  // everyone wants 2x
      const auto result = pipeline.transcode_to_target(page, target);
      met += result.met_target ? 1 : 0;
      qss.push_back(result.quality.qss);
      bytes_mb.push_back(to_mb(result.result_bytes));
      reductions.push_back(static_cast<double>(page.transfer_size()) /
                           static_cast<double>(result.result_bytes));
    }
    table.add_row({scenario.label, std::to_string(met) + "/" + std::to_string(pages.size()),
                   fmt(mean(qss), 3), fmt(mean(bytes_mb), 2) + " MB",
                   fmt(mean(reductions), 2) + "x"});
  }
  std::cout << "2x-reduction outcomes across " << pages.size()
            << " pages under different operator configurations:\n\n"
            << table.render(2)
            << "\nReading guide: a higher Qt trades reduction reach for QSS; the\n"
               "area-only ablation shows why RBR combines both heuristics.\n";
  return 0;
}
