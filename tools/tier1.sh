#!/usr/bin/env bash
# Tier-1 gate: the full test suite in the standard configuration, plus the
# robustness suite under ASan+UBSan (fault injection exercises the error
# paths — exactly where lifetime and UB bugs hide), plus the full suite
# under UBSan alone (cheap enough to run everything), plus the serving
# suite under TSan (the tier cache and single-flight are the concurrent
# core). Every ctest run carries a per-test timeout so a deadline-
# propagation bug hangs the suite loudly instead of forever.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -S . >/dev/null
cmake --build build -j >/dev/null
(cd build && ctest --output-on-failure --timeout 300 -j "$(nproc)")

cmake -B build-asan -S . -DAW4A_SANITIZE=ON >/dev/null
cmake --build build-asan -j --target robustness_test >/dev/null
(cd build-asan && ctest --output-on-failure --timeout 300 -R '^robustness_test$')

cmake -B build-ubsan -S . -DAW4A_SANITIZE=undefined >/dev/null
cmake --build build-ubsan -j >/dev/null
(cd build-ubsan && ctest --output-on-failure --timeout 300 -j "$(nproc)")

cmake -B build-tsan -S . -DAW4A_SANITIZE=thread >/dev/null
cmake --build build-tsan -j --target serving_test serving_stress_test >/dev/null
(cd build-tsan && ctest --output-on-failure --timeout 300 -R '^serving_(test|stress_test)$')

# Release-mode perf smoke: the cold-build fast path must keep its speedups
# (bench_perf_pipeline exits nonzero if any build mode or the integral SSIM
# diverges from the reference) and refresh the perf trajectory at repo root.
cmake -B build-perf -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build build-perf -j --target bench_perf_pipeline >/dev/null
./build-perf/bench/bench_perf_pipeline --repeat=2 --json=BENCH_pipeline.json

echo "tier1: OK"
