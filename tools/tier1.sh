#!/usr/bin/env bash
# Tier-1 gate: the full test suite in the standard configuration, plus the
# robustness suite under ASan+UBSan (fault injection exercises the error
# paths — exactly where lifetime and UB bugs hide), plus the serving suite
# under TSan (the tier cache and single-flight are the concurrent core).
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -S . >/dev/null
cmake --build build -j >/dev/null
(cd build && ctest --output-on-failure -j "$(nproc)")

cmake -B build-asan -S . -DAW4A_SANITIZE=ON >/dev/null
cmake --build build-asan -j --target robustness_test >/dev/null
(cd build-asan && ctest --output-on-failure -R '^robustness_test$')

cmake -B build-tsan -S . -DAW4A_SANITIZE=thread >/dev/null
cmake --build build-tsan -j --target serving_test serving_stress_test >/dev/null
(cd build-tsan && ctest --output-on-failure -R '^serving_(test|stress_test)$')

echo "tier1: OK"
