#!/usr/bin/env bash
# Tier-1 gate: the full test suite in the standard configuration, plus the
# robustness, asset-store, rANS-coder, and markup suites under ASan+UBSan
# (fault injection, eviction churn, attacker-controlled entropy-coded
# payloads, and the length-prefixed AWML parser on truncated/tampered blobs
# exercise the error paths — exactly where lifetime and UB bugs hide), plus
# the full suite under UBSan alone (cheap enough to run everything), plus
# the serving suite and the rANS coder under TSan (the tier cache,
# single-flight, and the content-addressed asset store are the concurrent
# core; the coder's thread-local scratch must stay race-free under the
# ladder's worker pool). Every ctest run carries a per-test timeout so a
# deadline-propagation bug hangs the suite loudly instead of forever.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -S . >/dev/null
cmake --build build -j >/dev/null
(cd build && ctest --output-on-failure --timeout 300 -j "$(nproc)")

cmake -B build-asan -S . -DAW4A_SANITIZE=ON >/dev/null
cmake --build build-asan -j --target robustness_test serving_asset_store_test imaging_ans_test web_markup_test >/dev/null
(cd build-asan && ctest --output-on-failure --timeout 300 -R '^(robustness_test|serving_asset_store_test|imaging_ans_test|web_markup_test)$')
# The rANS coder once more under each forced dispatch mode: the scalar and
# AVX2 decode paths take different code (deferred lane groups, the vector
# renorm's 16-byte stream load), so both must be sanitizer-clean — the env
# override steers every kAuto decode in the suite down the forced path.
(cd build-asan && AW4A_ANS_SIMD=scalar ctest --output-on-failure --timeout 300 -R '^imaging_ans_test$')
(cd build-asan && AW4A_ANS_SIMD=simd ctest --output-on-failure --timeout 300 -R '^imaging_ans_test$')

cmake -B build-ubsan -S . -DAW4A_SANITIZE=undefined >/dev/null
cmake --build build-ubsan -j >/dev/null
(cd build-ubsan && ctest --output-on-failure --timeout 300 -j "$(nproc)")
(cd build-ubsan && AW4A_ANS_SIMD=scalar ctest --output-on-failure --timeout 300 -R '^imaging_ans_test$')
(cd build-ubsan && AW4A_ANS_SIMD=simd ctest --output-on-failure --timeout 300 -R '^imaging_ans_test$')

cmake -B build-tsan -S . -DAW4A_SANITIZE=thread >/dev/null
cmake --build build-tsan -j --target serving_test serving_stress_test serving_overload_test serving_asset_store_test imaging_ans_test >/dev/null
(cd build-tsan && ctest --output-on-failure --timeout 300 -R '^(serving_(test|stress_test|overload_test|asset_store_test)|imaging_ans_test)$')

# Release-mode perf smoke: the cold-build fast path must keep its speedups
# (bench_perf_pipeline exits nonzero if any build mode, the integral SSIM, or
# the factored encode ladder diverges from its reference) and the serving
# build plane must keep its overload contract (bench_serve_overload exits
# nonzero when 4x overload produces any non-200 answer, drops goodput below
# 80% of 1x, or blows the shed fast-path bound). Fresh numbers are measured
# into a scratch file first and gated against the committed trajectory by
# bench_guard (>25% regression on a guarded metric fails the gate); only
# then do they overwrite the repo-root JSONs.
cmake -B build-perf -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build build-perf -j --target bench_perf_pipeline bench_serve_overload bench_asset_dedup bench_ext04_ultra_low_tiers >/dev/null
fresh_dir="$(mktemp -d)"
trap 'rm -rf "$fresh_dir"' EXIT
./build-perf/bench/bench_perf_pipeline --repeat=2 --json="$fresh_dir/BENCH_pipeline.json"
./build-perf/bench/bench_serve_overload --json="$fresh_dir/BENCH_serving.json"
# bench_asset_dedup exits nonzero on its own acceptance criteria (< 20%
# bytes/time saved at 30% duplication, or the store changing any served
# length); the guard then pins the bytes-built trajectory, which is a
# deterministic function of the corpus — regressions here are algorithmic,
# never noise.
./build-perf/bench/bench_asset_dedup --json="$fresh_dir/BENCH_dedup.json"
# bench_ext04 exits nonzero on its own acceptance criteria (markup tier mean
# savings < 85%, markup shallower than the image ladder on any page, ultra
# tiers losing PAW reachability in any band, or a rewrite-blob round-trip
# mismatch); the guard then pins the markup reduction and build-time
# trajectories, deterministic functions of the seeded corpus.
./build-perf/bench/bench_ext04_ultra_low_tiers --json="$fresh_dir/BENCH_ultra.json"
python3 tools/bench_guard.py \
  --committed BENCH_pipeline.json --fresh "$fresh_dir/BENCH_pipeline.json" \
  --metric cold_build_tiers_shared_cache --metric ssim_dense_integral \
  --metric encode_ladder_rans --metric decode_ladder_huffman \
  --metric decode_ladder_rans --metric rans_payload_reduction \
  --metric 'rans_decode_mb_per_s:higher' \
  --metric 'rans_decode_speedup:higher' \
  --metric 'rans_encode_speedup:higher'
python3 tools/bench_guard.py \
  --committed BENCH_serving.json --fresh "$fresh_dir/BENCH_serving.json" \
  --metric 'overload_2x/goodput' \
  --metric 'overload_4x/shed_service_p99_ms' \
  --metric 'overload_4x/shed_rate:lower'
python3 tools/bench_guard.py \
  --committed BENCH_dedup.json --fresh "$fresh_dir/BENCH_dedup.json" \
  --metric 'dedup_30/bytes_built:lower' \
  --metric 'dedup_30/bytes_saved_ratio'
# Wider tolerance here: markup builds are sub-millisecond, so scheduler
# noise dominates the build-time metric at the default 25%; an algorithmic
# regression overshoots 50% by orders of magnitude anyway.
python3 tools/bench_guard.py \
  --committed BENCH_ultra.json --fresh "$fresh_dir/BENCH_ultra.json" \
  --metric 'ultra_low/bytes_reduction' \
  --metric 'ultra_low/markup_build_ms' \
  --metric 'ultra_low/paw_reachable_ratio' \
  --tolerance 0.5
cp "$fresh_dir/BENCH_pipeline.json" BENCH_pipeline.json
cp "$fresh_dir/BENCH_serving.json" BENCH_serving.json
cp "$fresh_dir/BENCH_dedup.json" BENCH_dedup.json
cp "$fresh_dir/BENCH_ultra.json" BENCH_ultra.json

echo "tier1: OK"
