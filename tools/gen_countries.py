#!/usr/bin/env python3
"""Generates src/dataset/countries_data.inc — the embedded country table.

Constraints encoded here (all from the paper, see DESIGN.md §1):
  * 99 countries: 82 developing, 17 developed; Syria/Taiwan/Venezuela lack
    price data (96 usable).
  * Pakistan's DO price is 0.96% of GNI.
  * The 25 Fig-10 countries have DVLU PAW > 1, in the paper's ascending
    order; no other country has DVLU PAW > 1.
  * Exactly 48 of 96 countries have PAW > 1 for at least one plan; DVHU is
    the superset (48), DO fails for 38.
  * max PAW: DO 4.7, DVHU 13.2 (PAW = price/2 * W/2.47).
  * Country mean page sizes: developing ~N(2.87, 0.56) MB, developed
    ~N(2.64, 0.46) MB.
  * Fig 3a shape: of the failing countries, roughly 12-14% of all countries
    sit at PAW in (1, 1.5] and ~28-31% within (1, 3] per failing plan.
  * 110 extra anonymous price rows complete the 206-country price CDF with
    41-52% of countries above the 2% target per plan and the paper's price
    ranges (DO 0.07-41, DVLU 0.13-38.4, DVHU 0.13-56.9).
"""
import random

random.seed(20230910)

W_GLOBAL = 2.47
def paw(price, w): return (price / 2.0) * (w / W_GLOBAL)
def price_for(paw_target, w): return paw_target * 2.0 * W_GLOBAL / w

FIG10 = ["Uzbekistan", "South Africa", "Puerto Rico", "Trinidad and Tobago", "Senegal",
         "Ecuador", "Jamaica", "Mongolia", "Colombia", "Kyrgyzstan", "Kenya", "Bolivia",
         "El Salvador", "Cameroon", "Lebanon", "Sudan", "Dominican Republic", "Jordan",
         "Guatemala", "Cote d'Ivoire", "Tanzania", "Yemen", "Uganda", "Ethiopia", "Honduras"]

DEVELOPING_OTHER = ["India", "Pakistan", "Bangladesh", "Nigeria", "Indonesia", "Brazil",
    "Mexico", "Egypt", "Vietnam", "Philippines", "Thailand", "Turkey", "Iran", "Iraq",
    "Afghanistan", "Nepal", "Sri Lanka", "Myanmar", "Cambodia", "Laos", "Malaysia", "China",
    "Algeria", "Morocco", "Tunisia", "Ghana", "Mozambique", "Zambia", "Zimbabwe",
    "Angola", "Rwanda", "Malawi", "Madagascar", "Mali",
    "Niger", "Chad", "Benin", "Togo", "DR Congo", "Haiti",
    "Nicaragua", "Paraguay", "Peru", "Argentina", "Chile", "Panama", "Costa Rica",
    "Papua New Guinea", "Kazakhstan", "Tajikistan",
    "Azerbaijan", "Georgia", "Armenia", "Moldova", "Ukraine",
    "Syria", "Venezuela"]  # Syria/Venezuela: no price data

DEVELOPED = ["United States", "Germany", "Canada", "United Kingdom", "France", "Italy",
    "Spain", "Japan", "South Korea", "Australia", "Netherlands", "Sweden", "Norway",
    "Switzerland", "Austria", "Belgium", "Taiwan"]  # Taiwan: no price data

NO_PRICE = {"Syria", "Venezuela", "Taiwan"}

assert len(FIG10) + len(DEVELOPING_OTHER) == 82, len(FIG10) + len(DEVELOPING_OTHER)
assert len(DEVELOPED) == 17

rows = []  # (name, developing, has_price, do, dvlu, dvhu, w_mb)

def clamp(v, lo, hi): return max(lo, min(hi, v))

def page_size(developing):
    if developing:
        return clamp(random.gauss(2.87, 0.50), 1.75, 4.3)
    return clamp(random.gauss(2.64, 0.42), 1.75, 3.6)

# --- Fig-10 countries: ascending DVLU PAW from 1.05 to 4.6 -------------------
# First 8 sit in (1, 1.5] to feed Fig 3a's 1.5x band; the rest stretch to a
# modest 2.6 — image-only reductions (Fig. 10) must stay within reach for the
# mid-list countries (the paper's Lebanon hits 91.4% of URLs).
paw_targets = [1.05 + (1.46 - 1.05) * (i / 7.0) for i in range(8)] + \
              [1.52 + (2.6 - 1.52) * (i / 16.0) ** 1.1 for i in range(17)]
# DO/DVHU schedules are decoupled from DVLU so the Fig. 3a bands for those
# plans keep the paper's shape (12-14% newly met at 1.5x, ~29% at 3x) while
# DVLU stays modest for Fig. 10.
do_targets = [1.05 + (1.42 - 1.05) * (i / 7.0) for i in range(8)] + \
             [1.65 + (4.5 - 1.65) * (i / 16.0) ** 1.3 for i in range(17)]
dvhu_targets = [1.08 + (1.42 - 1.08) * (i / 7.0) for i in range(8)] + \
               [1.7 + (12.5 - 1.7) * (i / 16.0) ** 1.6 for i in range(17)]
fig10_rows = {}
for name, tgt, do_t, dvhu_t in zip(FIG10, paw_targets, do_targets, dvhu_targets):
    w = page_size(True)
    dvlu = price_for(tgt, w)
    do = price_for(max(do_t * random.uniform(0.95, 1.05), tgt * 1.001), w)
    dvhu = price_for(max(dvhu_t * random.uniform(0.95, 1.05), tgt * 1.002), w)
    fig10_rows[name] = (do, dvlu, dvhu, w)

# Pin the PAW maxima on the worst Fig-10 country (Honduras, the last).
w_h = fig10_rows["Honduras"][3]
fig10_rows["Honduras"] = (price_for(4.7, w_h), fig10_rows["Honduras"][1],
                          price_for(13.2, w_h), w_h)

for name in FIG10:
    do, dvlu, dvhu, w = fig10_rows[name]
    rows.append((name, True, True, do, dvlu, dvhu, w))

# --- Other developing countries ----------------------------------------------
# 48 countries fail >=1 plan in total; the 25 Fig-10 already fail. 23 more
# fail DVHU (and 13 of those also fail DO) but keep DVLU PAW < 1.
# Fig 3a shape: spread DVHU PAW of the 23 between 1.05 and 9.
others = [n for n in DEVELOPING_OTHER if n not in NO_PRICE]
random.shuffle(others)
extra_fail = others[:23]
pass_all = others[23:]

# Explicit DVHU quota bands over the 23: 5 in (1,1.5], 12 in (1.5,3], 6 above.
dvhu_band = [random.uniform(1.05, 1.45) for _ in range(5)] + \
            [random.uniform(1.55, 2.95) for _ in range(12)] + \
            [random.uniform(3.1, 9.0) for _ in range(6)]
# DO fails for 13 of them: 5 low, 5 mid, 3 high.
do_band = [random.uniform(1.05, 1.42) for _ in range(4)] + \
          [random.uniform(1.6, 2.9) for _ in range(6)] + \
          [random.uniform(3.0, 4.4) for _ in range(3)]
for i, name in enumerate(extra_fail):
    w = page_size(True)
    dvhu = price_for(dvhu_band[i], w)
    if i < 13:
        do = price_for(min(do_band[i], dvhu_band[i]), w)
    else:
        do = price_for(random.uniform(0.45, 0.95), w)
    dvlu = price_for(random.uniform(0.35, 0.9), w)
    rows.append((name, True, True, do, dvlu, dvhu, w))

for name in pass_all:
    w = page_size(True)
    if name == "Pakistan":
        do = 0.96
    else:
        do = price_for(random.uniform(0.08, 0.92), w)
    dvlu = min(do * random.uniform(0.5, 0.95), price_for(0.95, w))
    dvhu = price_for(random.uniform(0.3, 0.98), w)
    rows.append((name, True, True, do, dvlu, dvhu, w))

for name in DEVELOPING_OTHER:
    if name in NO_PRICE:
        rows.append((name, True, False, 0, 0, 0, page_size(True)))

# --- Developed ---------------------------------------------------------------
for name in DEVELOPED:
    w = page_size(False)
    if name in NO_PRICE:
        rows.append((name, False, False, 0, 0, 0, w))
        continue
    do = random.uniform(0.07, 0.9)
    dvlu = max(0.13, do * random.uniform(0.7, 1.3))
    dvhu = max(0.13, do * random.uniform(1.2, 2.2))
    rows.append((name, False, True, do, dvlu, dvhu, w))

# Force the global DO minimum (0.07) onto one developed row.
for i, r in enumerate(rows):
    if r[0] == "Norway":
        rows[i] = (r[0], r[1], r[2], 0.07, 0.13, 0.13, r[6])

# --- Validation on the named table -------------------------------------------
named = [r for r in rows if r[2]]
assert len(named) == 96, len(named)
def fails(r, plan):  # plan: 3=do,4=dvlu,5=dvhu
    return paw(r[plan], r[6]) > 1.0
dvlu_fail = [r[0] for r in named if fails(r, 4)]
assert sorted(dvlu_fail) == sorted(FIG10), set(dvlu_fail) ^ set(FIG10)
order = [paw(fig10_rows[n][1], fig10_rows[n][3]) for n in FIG10]
assert all(a < b for a, b in zip(order, order[1:])), "fig10 PAW not ascending"
any_fail = [r[0] for r in named if any(fails(r, p) for p in (3, 4, 5))]
assert len(any_fail) == 48, len(any_fail)
do_fail = [r for r in named if fails(r, 3)]
assert 34 <= len(do_fail) <= 40, len(do_fail)
maxpaw_do = max(paw(r[3], r[6]) for r in named)
maxpaw_dvhu = max(paw(r[5], r[6]) for r in named)
assert abs(maxpaw_do - 4.7) < 0.05, maxpaw_do
assert abs(maxpaw_dvhu - 13.2) < 0.05, maxpaw_dvhu
# Fig 3a bands (fraction of the 96 newly meeting the target at 1.5x / 3x).
for plan in (3, 5):
    pws = [paw(r[plan], r[6]) for r in named]
    f15 = sum(1 for p in pws if 1 < p <= 1.5) / 96 * 100
    f30 = sum(1 for p in pws if 1 < p <= 3.0) / 96 * 100
    print(f"plan {plan}: newly-met@1.5x={f15:.1f}%  @3x={f30:.1f}%  failing={sum(1 for p in pws if p>1)}")

# --- 110 extra price rows (206-country CDF) ----------------------------------
extras = []
targets = {"do": (49, 41.0, 0.07), "dvlu": (65, 38.4, 0.13), "dvhu": (59, 56.9, 0.13)}
named_above = {p: sum(1 for r in named if r[i] > 2.0) for p, i in (("do", 3), ("dvlu", 4), ("dvhu", 5))}
print("named above 2%:", named_above)
# Per-plan global targets: DO 42%, DVLU 46%, DVHU 52% of 206.
goal = {"do": int(0.42 * 206), "dvlu": int(0.46 * 206), "dvhu": int(0.52 * 206)}
need = {p: goal[p] - named_above[p] for p in goal}
print("extras above 2% needed:", need)
for k in range(110):
    row = {}
    for p, (_, pmax, pmin) in targets.items():
        if k < need[p]:
            v = clamp(random.lognormvariate(1.6, 0.75), 2.05, pmax)
        else:
            v = clamp(random.lognormvariate(-0.3, 0.55), pmin, 1.95)
        row[p] = v
    extras.append(row)
# Pin exact maxima.
extras[0]["do"], extras[1]["dvlu"], extras[2]["dvhu"] = 41.0, 38.4, 56.9
for p in targets:
    vals = [r[p] for r in extras] + [r[{"do": 3, "dvlu": 4, "dvhu": 5}[p]] for r in named]
    above = sum(1 for v in vals if v > 2.0) / 206
    print(f"{p}: {above*100:.1f}% of 206 above 2%  range=[{min(vals):.2f},{max(vals):.2f}]")

# --- Emit C++ -----------------------------------------------------------------
with open("src/dataset/countries_data.inc", "w") as f:
    f.write("// Generated by tools/gen_countries.py — do not edit by hand.\n")
    f.write("// Calibrated to the paper's aggregates; see DESIGN.md.\n")
    f.write("inline constexpr CountryRow kCountryRows[] = {\n")
    for name, dev, has, do, dvlu, dvhu, w in rows:
        f.write(f'    {{"{name}", {str(dev).lower()}, {str(has).lower()}, '
                f"{do:.4f}, {dvlu:.4f}, {dvhu:.4f}, {w:.4f}}},\n")
    f.write("};\n\ninline constexpr PriceRow kExtraPriceRows[] = {\n")
    for r in extras:
        f.write(f"    {{{r['do']:.4f}, {r['dvlu']:.4f}, {r['dvhu']:.4f}}},\n")
    f.write("};\n")
print("wrote src/dataset/countries_data.inc with", len(rows), "countries and", len(extras), "extras")
