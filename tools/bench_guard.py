#!/usr/bin/env python3
"""Perf-regression guard over the committed bench JSON trajectories.

Compares a freshly produced bench JSON (list of {name, unit, value} entries)
against the committed copy and fails when a guarded metric regressed beyond
the tolerance. Direction is inferred from the unit: for time-like units
(ms, s) and counts lower is better, for rate-like units (req_per_s, x,
ratio) higher is better. A `:lower` or `:higher` suffix on the metric name
overrides the inference — needed when the unit lies about the goal (a shed
*rate* is a ratio, but lower is better).

Only metrics named on the command line are guarded — the rest of the file is
trajectory, not contract. Machine noise is absorbed by the default 25%
tolerance; a genuine algorithmic regression (the integral-SSIM build, the
factored-DCT ladder, the single-flight cache) overshoots it by design.

Independent of the guarded set, every entry present in the committed
baseline must still be present in the fresh JSON: a bench that silently
stops emitting a metric would otherwise erode the baseline on the next
`cp fresh -> committed` and un-guard it forever. Missing names are printed
as MISSING lines and fail the run (fresh-only names are fine — that is how
new metrics land).

Usage:
  tools/bench_guard.py --committed BENCH_pipeline.json --fresh /tmp/fresh.json \
      --metric cold_build_tiers_shared_cache --metric ssim_dense_integral
  tools/bench_guard.py ... --metric 'overload_4x/shed_rate:lower'
  tools/bench_guard.py ... --tolerance 0.25

Exit codes: 0 ok, 1 regression, 2 usage/data error.
"""

import argparse
import json
import sys

LOWER_IS_BETTER_UNITS = {"ms", "s", "count", "bytes"}
HIGHER_IS_BETTER_UNITS = {"req_per_s", "x", "ratio"}


def load_entries(path):
    try:
        with open(path) as f:
            data = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"bench_guard: cannot read {path}: {e}")
    entries = {}
    for entry in data:
        if not isinstance(entry, dict) or "name" not in entry or "value" not in entry:
            sys.exit(f"bench_guard: malformed entry in {path}: {entry!r}")
        entries[entry["name"]] = (float(entry["value"]), entry.get("unit", ""))
    return entries


def parse_metric_spec(spec):
    """Splits 'name' or 'name:lower|higher' into (name, direction-or-None)."""
    name, sep, direction = spec.rpartition(":")
    if sep and direction in ("lower", "higher"):
        return name, direction
    return spec, None


def check_metric(name, direction, committed, fresh, tolerance):
    """Returns an error string, or None if the metric is within tolerance."""
    if name not in committed:
        return f"{name}: not present in committed baseline"
    if name not in fresh:
        return f"{name}: not present in fresh results"
    committed_value, unit = committed[name]
    fresh_value, fresh_unit = fresh[name]
    if unit and fresh_unit and unit != fresh_unit:
        return f"{name}: unit changed ({unit} -> {fresh_unit})"

    if direction is None:
        if unit in HIGHER_IS_BETTER_UNITS:
            direction = "higher"
        elif unit in LOWER_IS_BETTER_UNITS:
            direction = "lower"
        else:
            return (f"{name}: unknown unit '{unit}' (cannot infer direction; "
                    f"use --metric '{name}:lower' or ':higher')")

    if direction == "higher":
        floor = committed_value * (1.0 - tolerance)
        if fresh_value < floor:
            return (f"{name}: {fresh_value:g} {unit} fell below {floor:g} "
                    f"(committed {committed_value:g}, tolerance {tolerance:.0%})")
    else:
        ceiling = committed_value * (1.0 + tolerance)
        if fresh_value > ceiling:
            return (f"{name}: {fresh_value:g} {unit} exceeded {ceiling:g} "
                    f"(committed {committed_value:g}, tolerance {tolerance:.0%})")
    return None


def main():
    parser = argparse.ArgumentParser(description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--committed", required=True, help="baseline JSON (committed)")
    parser.add_argument("--fresh", required=True, help="freshly measured JSON")
    parser.add_argument("--metric", action="append", default=[], required=True,
                        help="metric name to guard (repeatable); append ':lower' "
                             "or ':higher' to override the unit-inferred direction")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed relative regression (default 0.25)")
    args = parser.parse_args()
    if not 0.0 < args.tolerance < 1.0:
        sys.exit("bench_guard: --tolerance must be in (0, 1)")

    committed = load_entries(args.committed)
    fresh = load_entries(args.fresh)

    missing = [name for name in committed if name not in fresh]
    for name in missing:
        print(f"bench_guard: MISSING: {name}: in committed baseline "
              f"but absent from fresh results", file=sys.stderr)

    failures = []
    for spec in args.metric:
        name, direction = parse_metric_spec(spec)
        error = check_metric(name, direction, committed, fresh, args.tolerance)
        committed_value = committed.get(name, (float("nan"),))[0]
        fresh_value = fresh.get(name, (float("nan"),))[0]
        status = "FAIL" if error else "ok"
        # Percent delta vs committed, printed for every compared metric so a
        # slow drift is visible in CI logs long before it trips the tolerance.
        if committed_value == committed_value and fresh_value == fresh_value \
                and committed_value != 0:
            delta = (fresh_value - committed_value) / committed_value
            delta_str = f" ({delta:+.1%})"
        else:
            delta_str = ""
        print(f"bench_guard: {status:4s} {name}: committed {committed_value:g}, "
              f"fresh {fresh_value:g}{delta_str}")
        if error:
            failures.append(error)

    if failures:
        for failure in failures:
            print(f"bench_guard: REGRESSION: {failure}", file=sys.stderr)
    if failures or missing:
        return 1
    print(f"bench_guard: {len(args.metric)} metric(s) within "
          f"{args.tolerance:.0%} of the committed baseline; "
          f"{len(committed)} baseline name(s) all present in fresh")
    return 0


if __name__ == "__main__":
    sys.exit(main())
