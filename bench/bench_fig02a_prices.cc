// Fig. 2a: CDF of mobile broadband prices (% of GNI per capita) across 206
// countries for the three ITU benchmark plans.
#include <algorithm>
#include <iostream>

#include "analysis/report.h"
#include "dataset/countries.h"
#include "util/table.h"

int main() {
  using namespace aw4a;
  analysis::print_header(
      std::cout, "Fig. 2a — mobile broadband prices",
      "prices span 0.07-41% (DO), 0.13-38.4% (DVLU), 0.13-56.9% (DVHU); "
      "41-52% of countries miss the 2% target",
      "calibrated 206-country price table (96 named + 110 additional)");

  for (net::PlanType plan : net::kAllPlans) {
    auto prices = dataset::global_price_distribution(plan);
    const double above =
        100.0 *
        static_cast<double>(std::count_if(prices.begin(), prices.end(),
                                          [](double p) { return p > 2.0; })) /
        static_cast<double>(prices.size());
    analysis::print_cdf(std::cout, std::string("price_pct_") + net::plan_code(plan),
                        std::move(prices));
    std::cout << "  " << net::plan_code(plan) << ": " << fmt(above, 1)
              << "% of countries above the 2% target\n\n";
  }
  return 0;
}
