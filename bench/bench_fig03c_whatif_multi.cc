// Fig. 3c + Fig. 14b: CDFs of the country-level reduction from removing
// multiple resource types at once.
#include <iostream>

#include "analysis/report.h"
#include "util/stats.h"

int main(int argc, char** argv) {
  using namespace aw4a;
  analysis::AnalysisOptions options;
  if (argc > 1) options.pages_per_country = std::atoi(argv[1]);
  analysis::print_header(
      std::cout, "Fig. 3c / Fig. 14b — what-if, multiple resource types",
      "removing images+JS reduces pages 3.1-8.8x; all four types 4.3-15.6x "
      "(cached: 3.3-9.8x for all four)",
      "per-country mean byte composition over synthetic corpora");

  const auto stats = analysis::measure_countries(options);
  const web::ObjectType img_js[] = {web::ObjectType::kImage, web::ObjectType::kJs};
  const web::ObjectType img_js_css[] = {web::ObjectType::kImage, web::ObjectType::kJs,
                                        web::ObjectType::kCss};
  const web::ObjectType four[] = {web::ObjectType::kImage, web::ObjectType::kJs,
                                  web::ObjectType::kCss, web::ObjectType::kFont};
  const struct {
    const char* label;
    std::span<const web::ObjectType> removed;
  } combos[] = {{"no_img_js", img_js}, {"no_img_js_css", img_js_css}, {"no_four", four}};
  for (const auto& combo : combos) {
    for (bool cached : {false, true}) {
      auto ratios = analysis::removal_ratios(stats, combo.removed, cached);
      const std::string name = std::string(combo.label) + (cached ? "_cached" : "");
      std::cout << "  " << name << ": " << summarize(ratios) << '\n';
      analysis::print_cdf(std::cout, name, std::move(ratios));
    }
  }
  std::cout << "paper bands: no_img_js 3.1-8.8x | no_four 4.3-15.6x | "
               "no_four cached 3.3-9.8x\n";
  return 0;
}
