// Fig. 2c + Fig. 12 (appendix A.3.1): CDFs of the PAW index across the 96
// priced countries — per plan, developing vs developed, cached vs not.
#include <algorithm>
#include <iostream>

#include "analysis/report.h"

int main() {
  using namespace aw4a;
  analysis::print_header(
      std::cout, "Fig. 2c / Fig. 12 — PAW index",
      "48/96 countries miss the target for >=1 plan; max PAW 4.7 (DO), 13.2 (DVHU); "
      "caching leaves the index nearly unchanged",
      "PAW from the calibrated table; cached variant scales both sides");

  for (net::PlanType plan : net::kAllPlans) {
    for (bool cached : {false, true}) {
      const auto points = analysis::paw_by_country(plan, cached);
      std::vector<double> developing;
      std::vector<double> developed;
      for (const auto& p : points) {
        (p.country->developing ? developing : developed).push_back(p.paw);
      }
      const std::string suffix =
          std::string(net::plan_code(plan)) + (cached ? "_cached" : "");
      analysis::print_cdf(std::cout, "paw_developing_" + suffix, developing);
      analysis::print_cdf(std::cout, "paw_developed_" + suffix, developed);
    }
  }

  int failing_any = 0;
  double max_do = 0;
  double max_dvhu = 0;
  for (const auto& p : analysis::paw_by_country(net::PlanType::kDataOnly, false)) {
    max_do = std::max(max_do, p.paw);
  }
  for (const auto& p : analysis::paw_by_country(net::PlanType::kDataVoiceHighUsage, false)) {
    max_dvhu = std::max(max_dvhu, p.paw);
  }
  const auto counted = analysis::paw_by_country(net::PlanType::kDataOnly, false);
  for (std::size_t i = 0; i < counted.size(); ++i) {
    bool fails = false;
    for (net::PlanType plan : net::kAllPlans) {
      if (analysis::paw_by_country(plan, false)[i].paw > 1.0) fails = true;
    }
    failing_any += fails ? 1 : 0;
  }
  analysis::print_compare(std::cout, "countries failing >=1 plan", 48, failing_any);
  analysis::print_compare(std::cout, "max PAW (DO)", 4.7, max_do);
  analysis::print_compare(std::cout, "max PAW (DVHU)", 13.2, max_dvhu);
  return 0;
}
