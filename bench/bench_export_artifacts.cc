// Writes plot-ready CSVs for the headline figures into ./artifacts/ — the
// handoff for anyone regenerating the paper's plots with their own tooling.
#include <filesystem>
#include <iostream>

#include "analysis/experiments.h"
#include "analysis/export.h"
#include "dataset/httparchive.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace aw4a;
  const std::filesystem::path dir = argc > 1 ? argv[1] : "artifacts";
  analysis::AnalysisOptions options;
  options.pages_per_country = 60;

  // Fig. 1: the growth series.
  {
    analysis::CsvWriter writer(dir / "fig01_page_evolution.csv",
                               {"year", "mobile_p25_kb", "mobile_median_kb", "mobile_p75_kb",
                                "desktop_median_kb"});
    const auto mobile = dataset::mobile_page_weight_series();
    const auto desktop = dataset::desktop_page_weight_series();
    for (std::size_t i = 0; i < mobile.size(); ++i) {
      const double row[] = {mobile[i].year, mobile[i].p25_kb, mobile[i].median_kb,
                            mobile[i].p75_kb, desktop[i].median_kb};
      writer.row_values(row);
    }
  }

  // Fig. 2a: price CDFs per plan.
  for (net::PlanType plan : net::kAllPlans) {
    analysis::export_cdf(dir / ("fig02a_prices_" + std::string(net::plan_code(plan)) + ".csv"),
                         dataset::global_price_distribution(plan));
  }

  // Fig. 2b/2c/3a inputs: one row per country.
  {
    const auto stats = analysis::measure_countries(options);
    analysis::CsvWriter writer(
        dir / "fig02_countries.csv",
        {"country", "developing", "mean_page_mb", "mean_cached_mb", "paw_do", "paw_dvlu",
         "paw_dvhu"});
    for (const auto& s : stats) {
      std::vector<std::string> row{std::string(s.country->name),
                                   s.country->developing ? "1" : "0",
                                   fmt(s.mean_page_mb, 4), fmt(s.mean_cached_mb, 4)};
      for (net::PlanType plan : net::kAllPlans) {
        row.push_back(s.country->has_price_data
                          ? fmt(core::paw_index(*s.country, plan), 4)
                          : "");
      }
      writer.row(row);
    }
  }

  // Fig. 3a: the affordability curve.
  {
    analysis::CsvWriter writer(dir / "fig03a_affordability.csv",
                               {"factor", "pct_failing_do", "pct_failing_dvlu",
                                "pct_failing_dvhu"});
    for (double factor = 1.0; factor <= 10.0 + 1e-9; factor += 0.25) {
      const double row[] = {
          factor, analysis::pct_countries_failing(net::PlanType::kDataOnly, false, factor),
          analysis::pct_countries_failing(net::PlanType::kDataVoiceLowUsage, false, factor),
          analysis::pct_countries_failing(net::PlanType::kDataVoiceHighUsage, false, factor)};
      writer.row_values(row);
    }
  }

  // Fig. 10 / Table 3.
  {
    analysis::CountryReductionOptions cro;
    cro.pages_per_country = 10;
    const auto rows = analysis::country_wise_reduction(cro);
    analysis::CsvWriter writer(dir / "fig10_country_reduction.csv",
                               {"country", "paw", "pct_urls_qt09", "pct_urls_qt08",
                                "avg_qss_qt09", "avg_qss_qt08"});
    for (const auto& r : rows) {
      writer.row(std::vector<std::string>{std::string(r.country->name), fmt(r.paw, 4),
                                          fmt(r.pct_meeting_qt09, 2), fmt(r.pct_meeting_qt08, 2),
                                          fmt(r.avg_qss_qt09, 4), fmt(r.avg_qss_qt08, 4)});
    }
  }

  std::cout << "wrote artifacts to " << dir << ":\n";
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    std::cout << "  " << entry.path().filename().string() << "  ("
              << entry.file_size() << " bytes)\n";
  }
  return 0;
}
