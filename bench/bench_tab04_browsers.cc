// Table 4 + Fig. 16 + the §8.3 comparison: page-size reductions of Opera
// Mini / Brave (default and block-scripts) vs Chrome, and HBS run at each
// competitor's achieved size with quality compared.
#include <iostream>

#include "analysis/report.h"
#include "util/stats.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace aw4a;
  analysis::BrowserComparisonOptions options;
  options.sites = argc > 1 ? std::atoi(argv[1]) : 16;
  analysis::print_header(
      std::cout, "Table 4 / Fig. 16 / §8.3 — browser comparison",
      "mean reductions: Opera Mini 30.5%, Brave 14.6%, Brave block-scripts "
      "57.3% (some pages grow; 4% break); HBS reduces ~11%/7% deeper yet "
      "users preferred it on 11/21 (Opera) and 5/9 (Brave) sites",
      std::to_string(options.sites) + " rich pages; HBS at matched budgets");

  const auto rows = analysis::compare_browsers(options);
  std::vector<double> opera;
  std::vector<double> brave;
  std::vector<double> blocked;
  int broken = 0;
  int hbs_better_opera = 0;
  int opera_compared = 0;
  int hbs_better_brave = 0;
  int brave_compared = 0;
  TextTable table({"url", "chrome", "opera%", "brave%", "blocked%", "HBSq-opq", "HBSq-brq"});
  for (const auto& row : rows) {
    opera.push_back(row.opera_pct);
    brave.push_back(row.brave_pct);
    blocked.push_back(row.brave_blocked_pct);
    if (row.brave_blocked_broken) ++broken;
    std::string dq_op = "-";
    std::string dq_br = "-";
    if (row.hbs_vs_opera_quality > 0) {
      ++opera_compared;
      if (row.hbs_vs_opera_quality >= row.opera_quality) ++hbs_better_opera;
      dq_op = fmt(row.hbs_vs_opera_quality - row.opera_quality, 3);
    }
    if (row.hbs_vs_brave_quality > 0) {
      ++brave_compared;
      if (row.hbs_vs_brave_quality >= row.brave_quality) ++hbs_better_brave;
      dq_br = fmt(row.hbs_vs_brave_quality - row.brave_quality, 3);
    }
    table.add_row({row.url, fmt(row.chrome_mb, 2) + "MB", fmt(row.opera_pct, 1),
                   fmt(row.brave_pct, 1), fmt(row.brave_blocked_pct, 1), dq_op, dq_br});
  }
  std::cout << table.render(2) << '\n';

  analysis::print_compare(std::cout, "Opera Mini mean reduction", 30.5, mean(opera), "%");
  analysis::print_compare(std::cout, "Brave default mean reduction", 14.6, mean(brave), "%");
  analysis::print_compare(std::cout, "Brave block-scripts mean", 57.3, mean(blocked), "%");
  analysis::print_summary(std::cout, "opera_pct", opera);
  analysis::print_summary(std::cout, "brave_pct", brave);
  analysis::print_summary(std::cout, "brave_blocked_pct", blocked);
  std::cout << "  pages broken by block-scripts: " << broken << "/" << rows.size()
            << "  (paper: 4% break completely)\n";
  std::cout << "  HBS quality >= competitor at matched size: " << hbs_better_opera << "/"
            << opera_compared << " (Opera), " << hbs_better_brave << "/" << brave_compared
            << " (Brave)  [paper user study: 11/21 and 5/9 preferred HBS]\n";
  return 0;
}
