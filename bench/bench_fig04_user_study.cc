// Fig. 4: the user study — (a) optimization level needed per site per
// reduction tier, (b) rated look/content dissimilarity, (c) the
// quality-access choice distribution from the Cobb-Douglas population.
#include <iostream>

#include "analysis/report.h"
#include "core/pipeline.h"
#include "dataset/corpus.h"
#include "econ/ratings.h"
#include "econ/user_study.h"
#include "util/table.h"

int main() {
  using namespace aw4a;
  analysis::print_header(
      std::cout, "Fig. 4 — user study",
      "all 10 sites usable at 1.5x, 8 at 3x, 5 at 6x; wikipedia degrades "
      "gracefully, youtube/savefrom don't; choices split ~0.32 at (1.5x,125) "
      "and ~0.31 at (6x,600) for usable sites",
      "10 named sites with class-typical compositions; 100-user Cobb-Douglas "
      "population with logit choice noise");

  dataset::CorpusGenerator gen;
  const auto pages = gen.user_study_pages();
  const double reductions[] = {1.25, 1.5, 3.0, 6.0};

  // (a) Optimization level heatmap + (b) rating heatmap.
  TextTable levels({"site", "1.25x", "1.5x", "3x", "6x"});
  TextTable ratings({"site", "1.25x", "1.5x", "3x", "6x"});
  Rng rng(4);
  int usable_at_3 = 0;
  int usable_at_6 = 0;
  for (const auto& page : pages) {
    const double total = static_cast<double>(page.transfer_size());
    double ext_js = 0;
    for (const auto& o : page.objects) {
      if (o.type == web::ObjectType::kJs && o.third_party) {
        ext_js += static_cast<double>(o.transfer_bytes);
      }
    }
    const econ::PageShares shares{
        .images = static_cast<double>(page.transfer_size(web::ObjectType::kImage)) / total,
        .js = static_cast<double>(page.transfer_size(web::ObjectType::kJs)) / total,
        .external_js = ext_js / total};
    std::vector<std::string> level_row{page.url};
    std::vector<std::string> rating_row{page.url};
    for (double r : reductions) {
      const auto level = econ::required_optimization_level(shares, r);
      level_row.push_back(fmt(static_cast<double>(level), 0) +
                          (econ::usable_at(level) ? "" : "!"));
      // Rating model: deeper levels imply lower surviving quality.
      const double quality = std::max(0.0, 1.0 - 0.16 * static_cast<double>(level));
      rating_row.push_back(fmt(econ::dissimilarity_rating(quality, &rng), 1));
      if (r == 3.0 && econ::usable_at(level)) ++usable_at_3;
      if (r == 6.0 && econ::usable_at(level)) ++usable_at_6;
    }
    levels.add_row(std::move(level_row));
    ratings.add_row(std::move(rating_row));
  }
  std::cout << "(a) optimization level needed (0-5, '!' = page unusable):\n"
            << levels.render(2) << '\n';
  std::cout << "(b) simulated dissimilarity ratings (0-5, higher = worse):\n"
            << ratings.render(2) << '\n';
  analysis::print_compare(std::cout, "sites usable at 3x", 8, usable_at_3);
  analysis::print_compare(std::cout, "sites usable at 6x", 5, usable_at_6);

  // (c) Choice distribution.
  Rng study_rng(44);
  econ::StudyOptions options;
  options.participants = 100;
  const auto usable = econ::usable_site_bundles();
  const auto usable_shares = econ::simulate_choices(study_rng, usable, options);
  std::cout << "\n(c) choices, sites usable at 6x:\n";
  for (std::size_t i = 0; i < usable.size(); ++i) {
    std::cout << "  (" << fmt(usable[i].reduction, 1) << "x," << fmt(usable[i].accesses, 0)
              << "): " << fmt(usable_shares[i], 2) << '\n';
  }
  analysis::print_compare(std::cout, "P(1.5x,125)", 0.32, usable_shares.front());
  analysis::print_compare(std::cout, "P(6x,600)", 0.31, usable_shares.back());

  const auto fragile = econ::fragile_site_bundles();
  const auto fragile_shares = econ::simulate_choices(study_rng, fragile, options);
  std::cout << "choices, sites unusable at 6x:\n";
  for (std::size_t i = 0; i < fragile.size(); ++i) {
    std::cout << "  (" << fmt(fragile[i].reduction, 1) << "x," << fmt(fragile[i].accesses, 0)
              << "): " << fmt(fragile_shares[i], 2) << '\n';
  }

  const double gain_frac = econ::fraction_with_utility_gain(
      study_rng, econ::StudyOptions{.participants = 2000}, 2.47, 100, 2.47 / 1.5, 150);
  std::cout << "fraction with utility gain from (1.5x quality, 1.5x accesses): "
            << fmt(gain_frac, 2) << "  (paper: 'significant fraction')\n";
  return 0;
}
