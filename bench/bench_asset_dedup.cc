// Cross-site dedup benchmark of the content-addressed asset store.
//
// The tier cache keys on page identity, so two sites embedding the same CDN
// logo each pay a full ladder build. The asset store keys built families on
// asset *content*; this bench measures what that buys at realistic cross-site
// duplication rates. For each duplication rate in {0%, 10%, 30%} it generates
// a corpus with the dataset layer's shared-asset pool, then cold-builds every
// site twice — once with the store enabled, once disabled — and reports:
//
//   dedup_<pct>/bytes_built        encoder output bytes with the store ON
//   dedup_<pct>/bytes_built_off    the same with the store OFF (baseline)
//   dedup_<pct>/bytes_saved_ratio  1 - on/off (higher is better)
//   dedup_<pct>/cold_build_ms      serial cold pass wall time, store ON
//                                  (min over --repeat fresh origins)
//   dedup_<pct>/cold_build_ms_off  the same, store OFF
//   dedup_<pct>/exact_hits         content-identical reuse during the pass
//   dedup_<pct>/semantic_hits      near-duplicate reuse during the pass
//   dedup_<pct>/footprint_bytes    resident store bytes after the pass
//   dedup_<pct>/realized_dup_rate  duplicate fraction actually generated
//
// Bytes built come from imaging::build_work_stats() (process-wide encoder
// counters), so the pass runs strictly serially: one request per site, no
// queue, prewarm pinned to one worker — the numbers are a deterministic
// function of the corpus. Prewarm is ON in both modes on purpose: a store
// miss warms the *full* family set (that is what a later hit adopts), so the
// fair baseline is the prewarmed cold build that enumerates the same set.
// Without prewarm the lazy path builds only the families the solvers happen
// to demand, and the store's first-build warming would be charged for
// families the baseline never paid for.
//
// Exit status is the acceptance check (run by tier1.sh): non-zero when the
// 30% row saves less than 20% of bytes built or of cold-build time, or when
// any site's served content length differs between store ON and store OFF
// at any rate (the store must never change outcomes, only costs).
//
//   build/bench/bench_asset_dedup [--sites=24] [--repeat=3]
//       [--json=BENCH_dedup.json]
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "dataset/corpus.h"
#include "imaging/variants.h"
#include "serving/origin.h"
#include "util/rng.h"

namespace {

using namespace aw4a;
using Clock = std::chrono::steady_clock;

struct BenchOptions {
  std::size_t sites = 24;
  int repeat = 5;
  std::string json_path = "BENCH_dedup.json";
};

struct Entry {
  std::string name;
  std::string unit;
  double value = 0.0;
};

void write_json(const std::string& path, const std::vector<Entry>& entries) {
  std::ofstream out(path);
  out << "[\n";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    char value[64];
    std::snprintf(value, sizeof(value), "%.6g", entries[i].value);
    out << "  {\"name\": \"" << entries[i].name << "\", \"unit\": \"" << entries[i].unit
        << "\", \"value\": " << value << "}" << (i + 1 < entries.size() ? "," : "") << "\n";
  }
  out << "]\n";
}

std::vector<serving::OriginSite> make_corpus(double duplication_rate,
                                             const BenchOptions& options) {
  dataset::CorpusGenerator gen(dataset::CorpusOptions{
      .seed = 4242,
      .rich = true,
      .cross_site_duplication_rate = duplication_rate,
  });
  Rng rng(4242);
  core::DeveloperConfig config;
  config.tier_reductions = {2.0};
  config.min_image_ssim = 0.8;
  config.measure_qfs = false;
  std::vector<serving::OriginSite> sites;
  sites.reserve(options.sites);
  for (std::size_t i = 0; i < options.sites; ++i) {
    const Bytes target = from_kb(rng.uniform(150.0, 400.0));
    sites.push_back(serving::OriginSite{
        "site-" + std::to_string(i) + ".example",
        gen.make_page(rng, target, gen.global_profile()),
        config,
        net::PlanType::kDataVoiceLowUsage,
    });
  }
  return sites;
}

/// Duplicate fraction the corpus actually realized: rich image objects whose
/// SourceImage is a repeat of one already seen anywhere in the corpus.
double realized_duplication(const std::vector<serving::OriginSite>& sites) {
  std::unordered_map<const imaging::SourceImage*, int> seen;
  std::uint64_t total = 0;
  std::uint64_t duplicates = 0;
  for (const auto& site : sites) {
    for (const auto& object : site.page.objects) {
      if (object.type != web::ObjectType::kImage || object.image == nullptr) continue;
      ++total;
      if (seen[object.image.get()]++ > 0) ++duplicates;
    }
  }
  return total == 0 ? 0.0 : static_cast<double>(duplicates) / static_cast<double>(total);
}

net::HttpRequest make_request(const std::string& host) {
  net::HttpRequest request;
  request.headers.push_back({"Host", host});
  request.headers.push_back({"Save-Data", "on"});
  request.headers.push_back({"AW4A-Savings", "50"});
  return request;
}

struct ColdPassResult {
  std::uint64_t bytes_built = 0;  ///< encoder output during the pass
  std::uint64_t encodes = 0;
  /// Sum over sites of each site's *minimum* build time across repeats.
  /// Per-site minima filter scheduler noise spikes far better than a
  /// whole-pass minimum: one slow site in an otherwise clean repeat no
  /// longer poisons the repeat. (Bytes need no such care — deterministic.)
  double wall_ms = 0.0;
  std::vector<Bytes> content_lengths;  ///< per site, first repeat
  serving::AssetStoreStats store;      ///< first repeat
  int errors = 0;
};

/// Serial cold pass over every site against a fresh origin per repeat.
/// Inline builds (no queue), no prewarm threads: the encoder counters and
/// the on/off byte delta are deterministic; only wall time is sampled.
ColdPassResult run_cold_pass(const std::vector<serving::OriginSite>& sites, bool dedup,
                             const BenchOptions& options) {
  ColdPassResult result;
  std::vector<double> site_min_ms(sites.size(), std::numeric_limits<double>::max());
  for (int repeat = 0; repeat < options.repeat; ++repeat) {
    serving::OriginOptions origin_options;
    origin_options.build_queue_enabled = false;
    origin_options.prewarm_workers = 1;  // full family set in both modes, serially
    origin_options.asset_store_enabled = dedup;
    const serving::OriginServer origin(sites, std::move(origin_options));

    imaging::reset_build_work_stats();
    std::vector<Bytes> lengths;
    lengths.reserve(sites.size());
    for (std::size_t i = 0; i < sites.size(); ++i) {
      const auto start = Clock::now();
      const auto response = origin.handle(make_request(sites[i].host));
      const double ms = std::chrono::duration<double, std::milli>(Clock::now() - start).count();
      site_min_ms[i] = std::min(site_min_ms[i], ms);
      if (response.status != 200) ++result.errors;
      lengths.push_back(response.content_length);
    }

    if (repeat == 0) {
      const imaging::BuildWorkStats work = imaging::build_work_stats();
      result.bytes_built = work.encoded_bytes;
      result.encodes = work.encodes;
      result.content_lengths = std::move(lengths);
      result.store = origin.asset_store_stats();
    }
  }
  for (const double ms : site_min_ms) result.wall_ms += ms;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  BenchOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    const auto value = [&](std::string_view prefix) -> const char* {
      return arg.substr(prefix.size()).data();
    };
    if (arg.starts_with("--sites=")) {
      options.sites = static_cast<std::size_t>(std::strtoul(value("--sites="), nullptr, 10));
    } else if (arg.starts_with("--repeat=")) {
      options.repeat = static_cast<int>(std::strtol(value("--repeat="), nullptr, 10));
    } else if (arg.starts_with("--json=")) {
      options.json_path = value("--json=");
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", std::string(arg).c_str());
      return 2;
    }
  }

  constexpr double kRates[] = {0.0, 0.1, 0.3};
  std::vector<Entry> entries;
  bool accept = true;

  for (const double rate : kRates) {
    const int pct = static_cast<int>(rate * 100.0 + 0.5);
    const std::string prefix = "dedup_" + std::to_string(pct) + "/";
    const auto sites = make_corpus(rate, options);
    const double realized = realized_duplication(sites);

    const ColdPassResult on = run_cold_pass(sites, /*dedup=*/true, options);
    const ColdPassResult off = run_cold_pass(sites, /*dedup=*/false, options);

    const double off_bytes = static_cast<double>(off.bytes_built);
    const double saved =
        off_bytes == 0.0 ? 0.0 : 1.0 - static_cast<double>(on.bytes_built) / off_bytes;
    const double time_saved =
        off.wall_ms == 0.0 ? 0.0 : 1.0 - on.wall_ms / off.wall_ms;

    entries.push_back({prefix + "bytes_built", "bytes", static_cast<double>(on.bytes_built)});
    entries.push_back(
        {prefix + "bytes_built_off", "bytes", static_cast<double>(off.bytes_built)});
    entries.push_back({prefix + "bytes_saved_ratio", "ratio", saved});
    entries.push_back({prefix + "cold_build_ms", "ms", on.wall_ms});
    entries.push_back({prefix + "cold_build_ms_off", "ms", off.wall_ms});
    entries.push_back({prefix + "exact_hits", "count", static_cast<double>(on.store.exact_hits)});
    entries.push_back(
        {prefix + "semantic_hits", "count", static_cast<double>(on.store.semantic_hits)});
    entries.push_back(
        {prefix + "footprint_bytes", "bytes", static_cast<double>(on.store.resident_bytes)});
    entries.push_back({prefix + "realized_dup_rate", "ratio", realized});

    std::printf(
        "dedup %3d%%  realized %.3f  bytes on/off %.3gMB/%.3gMB (saved %4.1f%%)  "
        "cold %7.1f/%7.1fms (saved %4.1f%%)  hits %llu+%llu  footprint %.3gMB\n",
        pct, realized, static_cast<double>(on.bytes_built) / 1e6,
        static_cast<double>(off.bytes_built) / 1e6, saved * 100.0, on.wall_ms, off.wall_ms,
        time_saved * 100.0, static_cast<unsigned long long>(on.store.exact_hits),
        static_cast<unsigned long long>(on.store.semantic_hits),
        static_cast<double>(on.store.resident_bytes) / 1e6);

    // Acceptance: the store must never change what is served...
    if (on.errors != 0 || off.errors != 0) {
      std::fprintf(stderr, "FAIL dedup_%d: non-200 answers (on=%d off=%d)\n", pct, on.errors,
                   off.errors);
      accept = false;
    }
    for (std::size_t i = 0; i < sites.size(); ++i) {
      if (on.content_lengths[i] != off.content_lengths[i]) {
        std::fprintf(stderr,
                     "FAIL dedup_%d: site %zu served %llu bytes with the store, %llu without\n",
                     pct, i, static_cast<unsigned long long>(on.content_lengths[i]),
                     static_cast<unsigned long long>(off.content_lengths[i]));
        accept = false;
      }
    }
    // ...and at 30% duplication it must pay for itself: >= 20% of bytes
    // built and of cold-build time (ISSUE acceptance threshold).
    if (pct == 30) {
      if (saved < 0.20) {
        std::fprintf(stderr, "FAIL dedup_30: bytes saved %.1f%% < 20%%\n", saved * 100.0);
        accept = false;
      }
      if (time_saved < 0.20) {
        std::fprintf(stderr, "FAIL dedup_30: cold-build time saved %.1f%% < 20%%\n",
                     time_saved * 100.0);
        accept = false;
      }
    }
  }

  write_json(options.json_path, entries);
  std::printf("%s -> %s\n", accept ? "OK" : "FAILED", options.json_path.c_str());
  return accept ? 0 : 1;
}
