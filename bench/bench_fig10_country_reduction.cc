// Fig. 10 + Table 3: per-country reduction to 1/PAW with RBR image
// optimization alone, for the 25 DVLU-failing countries, at Qt=0.9 and 0.8 —
// the % of URLs meeting the target and the average QSS of the reduced pages.
#include <iostream>

#include "analysis/report.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace aw4a;
  analysis::CountryReductionOptions options;
  options.pages_per_country = argc > 1 ? std::atoi(argv[1]) : 20;
  analysis::print_header(
      std::cout, "Fig. 10 + Table 3 — country-wise reduction with RBR",
      "a significant share of URLs reach 1/PAW with images alone (e.g. "
      "Lebanon 91.4% at Qt=0.8); avg QSS stays 0.94-0.98 (Qt=0.9) and "
      "0.86-0.97 (Qt=0.8); countries sorted by ascending PAW",
      std::to_string(options.pages_per_country) + " rich pages per country, DVLU plan");

  const auto rows = analysis::country_wise_reduction(options);
  TextTable table({"country", "PAW", "%URLs Qt=0.9", "%URLs Qt=0.8", "QSS Qt=0.9",
                   "QSS Qt=0.8"});
  double meet09_total = 0;
  double meet08_total = 0;
  for (const auto& row : rows) {
    table.add_row({std::string(row.country->name), fmt(row.paw, 2),
                   fmt(row.pct_meeting_qt09, 1), fmt(row.pct_meeting_qt08, 1),
                   fmt(row.avg_qss_qt09, 2), fmt(row.avg_qss_qt08, 2)});
    meet09_total += row.pct_meeting_qt09;
    meet08_total += row.pct_meeting_qt08;
  }
  std::cout << table.render(2) << '\n';
  std::cout << "mean %URLs meeting 1/PAW: Qt=0.9 " << fmt(meet09_total / rows.size(), 1)
            << "%, Qt=0.8 " << fmt(meet08_total / rows.size(), 1) << "%\n";
  std::cout << "expected shape: high-PAW countries (right of the figure) meet "
               "the target for far fewer URLs; Qt=0.8 dominates Qt=0.9\n";
  return 0;
}
