// Ablations of the design choices DESIGN.md §4 calls out:
//   1. RBR heuristics: area-only vs bytes-efficiency-only vs both
//   2. Grid Search branch-and-bound pruning vs the paper's exhaustive scan
//   3. Stage-1 on vs off ahead of Stage-2
//   4. Muzeel vs adjustable JS reduction (footnote-27 extension)
#include <chrono>
#include <iostream>

#include "analysis/report.h"
#include "core/grid_search.h"
#include "core/knapsack.h"
#include "core/pipeline.h"
#include "dataset/corpus.h"
#include "util/stats.h"
#include "util/table.h"

namespace {

using namespace aw4a;

std::vector<web::WebPage> sample_pages(int n) {
  dataset::CorpusGenerator gen(dataset::CorpusOptions{.seed = 424242, .rich = true});
  return gen.global_pages(n);
}

void ablate_rbr_heuristics(const std::vector<web::WebPage>& pages) {
  std::cout << "--- RBR heuristic weights (target: 25% reduction, Qt=0.9) ---\n";
  TextTable table({"heuristics", "met", "mean QSS", "mean bytes (MB)"});
  const struct {
    const char* label;
    double area;
    double eff;
  } configs[] = {{"area only", 1.0, 0.0}, {"bytes-efficiency only", 0.0, 1.0},
                 {"both (paper default)", 0.5, 0.5}};
  for (const auto& cfg : configs) {
    int met = 0;
    std::vector<double> qss;
    std::vector<double> mb;
    for (const auto& page : pages) {
      core::LadderCache ladders;
      core::RbrOptions options;
      options.area_weight = cfg.area;
      options.bytes_efficiency_weight = cfg.eff;
      web::ServedPage served = web::serve_original(page);
      const auto outcome =
          core::rank_based_reduce(served, page.transfer_size() * 3 / 4, ladders, options);
      met += outcome.met_target ? 1 : 0;
      qss.push_back(core::compute_qss(served));
      mb.push_back(to_mb(outcome.bytes_after));
    }
    table.add_row({cfg.label, std::to_string(met) + "/" + std::to_string(pages.size()),
                   fmt(mean(qss), 4), fmt(mean(mb), 2)});
  }
  std::cout << table.render(2) << '\n';
}

void ablate_grid_pruning(const std::vector<web::WebPage>& pages) {
  std::cout << "--- Grid Search: branch-and-bound vs exhaustive (80% target) ---\n";
  TextTable table({"mode", "mean seconds", "timeouts", "mean nodes", "mean QSS"});
  for (bool prune : {true, false}) {
    std::vector<double> secs;
    std::vector<double> nodes;
    std::vector<double> qss;
    int timeouts = 0;
    for (const auto& page : pages) {
      if (core::rich_images(page).size() > 26) continue;
      core::LadderCache ladders;
      core::GridSearchOptions options;
      options.branch_and_bound = prune;
      options.timeout_seconds = 2.0;
      web::ServedPage served = web::serve_original(page);
      const auto t0 = std::chrono::steady_clock::now();
      const auto outcome =
          core::grid_search(served, page.transfer_size() * 8 / 10, ladders, options);
      secs.push_back(
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count());
      nodes.push_back(static_cast<double>(outcome.nodes_explored));
      qss.push_back(outcome.qss);
      timeouts += outcome.timed_out ? 1 : 0;
    }
    table.add_row({prune ? "branch-and-bound (ours)" : "exhaustive (paper)",
                   fmt(mean(secs), 3), std::to_string(timeouts), fmt(mean(nodes), 0),
                   fmt(mean(qss), 4)});
  }
  // The exact DP oracle (Appendix A.2's bounded-knapsack mapping) on the
  // same candidate set: optimal QSS in polynomial time.
  {
    std::vector<double> secs;
    std::vector<double> qss;
    for (const auto& page : pages) {
      if (core::rich_images(page).size() > 26) continue;
      core::LadderCache ladders;
      web::ServedPage served = web::serve_original(page);
      const auto t0 = std::chrono::steady_clock::now();
      const auto outcome =
          core::knapsack_optimize(served, page.transfer_size() * 8 / 10, ladders);
      secs.push_back(
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count());
      qss.push_back(outcome.qss);
    }
    table.add_row({"exact DP (appendix A.2)", fmt(mean(secs), 3), "0", "-", fmt(mean(qss), 4)});
  }
  std::cout << table.render(2) << '\n';
}

void ablate_stage1(const std::vector<web::WebPage>& pages) {
  std::cout << "--- Stage-1 ahead of HBS (60% target) ---\n";
  TextTable table({"pipeline", "met", "mean QSS", "mean reduction"});
  for (bool with_stage1 : {true, false}) {
    core::DeveloperConfig config;
    config.measure_qfs = false;
    if (!with_stage1) {
      config.stage1.minify_gain = 1.0;
      config.stage1.font_metadata_fraction = 0.0;
      config.stage1.min_transcode_ssim = 1.1;  // nothing qualifies
    }
    const core::Aw4aPipeline pipeline(config);
    int met = 0;
    std::vector<double> qss;
    std::vector<double> red;
    for (const auto& page : pages) {
      const auto result =
          pipeline.transcode_to_target(page, page.transfer_size() * 6 / 10);
      met += result.met_target ? 1 : 0;
      qss.push_back(result.quality.qss);
      red.push_back(result.reduction_factor());
    }
    table.add_row({with_stage1 ? "stage1 + HBS" : "HBS only",
                   std::to_string(met) + "/" + std::to_string(pages.size()),
                   fmt(mean(qss), 4), fmt(mean(red), 2) + "x"});
  }
  std::cout << table.render(2) << '\n';
}

void ablate_js_strategy(const std::vector<web::WebPage>& pages) {
  std::cout << "--- JS stage: Muzeel (paper) vs adjustable (footnote 27) ---\n";
  TextTable table({"strategy", "met", "mean overshoot pp", "mean QFS"});
  for (auto strategy : {core::HbsOptions::JsStrategy::kMuzeel,
                        core::HbsOptions::JsStrategy::kAdjustable}) {
    core::DeveloperConfig config;
    config.js_strategy = strategy;
    const core::Aw4aPipeline pipeline(config);
    int met = 0;
    std::vector<double> overshoot;
    std::vector<double> qfs;
    for (const auto& page : pages) {
      const double requested = 0.30;
      const auto result = pipeline.transcode_to_target(
          page, static_cast<Bytes>(static_cast<double>(page.transfer_size()) *
                                   (1.0 - requested)));
      met += result.met_target ? 1 : 0;
      const double achieved = 1.0 - static_cast<double>(result.result_bytes) /
                                        static_cast<double>(page.transfer_size());
      overshoot.push_back((achieved - requested) * 100.0);
      qfs.push_back(result.quality.qfs);
    }
    table.add_row(
        {strategy == core::HbsOptions::JsStrategy::kMuzeel ? "muzeel" : "adjustable",
         std::to_string(met) + "/" + std::to_string(pages.size()), fmt(mean(overshoot), 2),
         fmt(mean(qfs), 4)});
  }
  std::cout << table.render(2)
            << "\n  expected: adjustable eliminates overshoot at equal-or-better QFS\n";
}

}  // namespace

int main(int argc, char** argv) {
  const int n = argc > 1 ? std::atoi(argv[1]) : 6;
  analysis::print_header(std::cout, "Ablations — DESIGN.md §4 design choices",
                         "n/a (engineering ablations of this implementation)",
                         std::to_string(n) + " rich pages per ablation");
  const auto pages = sample_pages(n);
  ablate_rbr_heuristics(pages);
  ablate_grid_pruning(pages);
  ablate_stage1(pages);
  ablate_js_strategy(pages);
  return 0;
}
