// EXT-04 — the ultra-low tiers below the image ladder (DESIGN.md §14).
//
// The paper's ladder stops where image re-encoding stops; the PAW targets of
// the least-affordable countries do not. This bench measures what the two
// heterogeneous rungs buy: per-tier bytes/quality across a rich corpus, and
// PAW reachability per country band — the share of (country, page) pairs
// whose 1/PAW byte target the served ladder can actually meet, with the
// image ladder alone vs with text-only and markup-rewrite tiers appended.
//
// Exit status is the acceptance check (run by tier1.sh): non-zero when the
// markup tier saves less than 85% of page bytes on average, when an ultra
// tier fails to go deeper than the image ladder on any page, when appending
// ultra tiers *loses* PAW reachability anywhere, or when any page's rewrite
// blob fails its parse round-trip.
//
//   build/bench/bench_ext04_ultra_low_tiers [--pages=8] [--json=BENCH_ultra.json]
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/report.h"
#include "core/api.h"
#include "dataset/corpus.h"
#include "util/rng.h"
#include "util/table.h"
#include "web/markup.h"

namespace {

using namespace aw4a;

struct Entry {
  std::string name;
  std::string unit;
  double value = 0.0;
};

void write_json(const std::string& path, const std::vector<Entry>& entries) {
  std::ofstream out(path);
  out << "[\n";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    char value[64];
    std::snprintf(value, sizeof(value), "%.6g", entries[i].value);
    out << "  {\"name\": \"" << entries[i].name << "\", \"unit\": \"" << entries[i].unit
        << "\", \"value\": " << value << "}" << (i + 1 < entries.size() ? "," : "") << "\n";
  }
  out << "]\n";
}

struct TierAgg {
  double bytes = 0, reduction = 0, savings = 0, qss = 0, qfs = 0, elapsed_ms = 0;
  int n = 0;
  void add(const core::Tier& tier) {
    bytes += static_cast<double>(tier.result.result_bytes);
    reduction += tier.achieved_reduction();
    savings += tier.savings_fraction();
    qss += tier.result.quality.qss;
    qfs += tier.result.quality.qfs;
    elapsed_ms += tier.result.elapsed_seconds * 1000.0;
    ++n;
  }
  double mean(double TierAgg::* field) const {
    return n == 0 ? 0.0 : this->*field / n;
  }
};

/// PAW bands of the DVLU plan: the four rows of the reachability table.
struct Band {
  const char* label;
  double lo, hi;
  int countries = 0;
  int pairs = 0;          ///< (country, page) pairs in the band
  int image_only = 0;     ///< pairs whose PAW the image ladder alone meets
  int with_ultra = 0;     ///< pairs met once ultra tiers are appended
  int served_ultra = 0;   ///< pairs paw_tier routes to an ultra rung
};

}  // namespace

int main(int argc, char** argv) {
  int pages = 8;
  std::string json_path = "BENCH_ultra.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--pages=", 8) == 0) pages = std::atoi(argv[i] + 8);
    if (std::strncmp(argv[i], "--json=", 7) == 0) json_path = argv[i] + 7;
  }

  analysis::print_header(
      std::cout, "EXT-04 — ultra-low tiers: text-only and single-file markup",
      "the image ladder bottoms out near 3x; the markup tier ships >= 85% "
      "fewer bytes, putting every country band's 1/PAW target in reach",
      std::to_string(pages) + " rich pages, image tiers {1.5, 2, 3}x + ultra tiers, "
      "DVLU plan");

  dataset::CorpusGenerator gen(dataset::CorpusOptions{.seed = 404, .rich = true});
  Rng rng(404);
  core::DeveloperConfig config;
  config.tier_reductions = {1.5, 2.0, 3.0};
  config.min_image_ssim = 0.8;
  config.ultra_low.text_only = true;
  config.ultra_low.markup_rewrite = true;
  const core::Aw4aPipeline pipeline(config);

  bool ok = true;
  // Pages outlive the ladders: every Tier's ServedPage points back at its
  // WebPage, so the corpus is materialized first (and never reallocated).
  std::vector<web::WebPage> corpus;
  corpus.reserve(static_cast<std::size_t>(pages));
  for (int p = 0; p < pages; ++p) {
    corpus.push_back(
        gen.make_page(rng, from_kb(rng.uniform(600.0, 2200.0)), gen.global_profile()));
  }
  std::vector<std::vector<core::Tier>> ladders;
  TierAgg image_deepest, text_only, markup;
  for (int p = 0; p < pages; ++p) {
    const web::WebPage& page = corpus[static_cast<std::size_t>(p)];
    std::vector<core::Tier> tiers = pipeline.build_tiers(page);

    double deepest_image = 0.0;
    for (const core::Tier& tier : tiers) {
      if (tier.kind == core::TierKind::kImage) {
        deepest_image = std::max(deepest_image, tier.achieved_reduction());
      }
    }
    for (const core::Tier& tier : tiers) {
      switch (tier.kind) {
        case core::TierKind::kImage:
          if (tier.achieved_reduction() == deepest_image) break;
          continue;
        case core::TierKind::kTextOnly: text_only.add(tier); break;
        case core::TierKind::kMarkupRewrite: markup.add(tier); break;
      }
      if (tier.kind == core::TierKind::kImage) image_deepest.add(tier);
      // The markup tier must dominate the image ladder on every page. The
      // text-only tier keeps scripts (the page stays functional), so on
      // JS-heavy pages it legitimately lands *above* a deep image tier —
      // the non-monotone ladder paw_tier's fallback is built for.
      if (tier.kind == core::TierKind::kMarkupRewrite &&
          tier.achieved_reduction() <= deepest_image) {
        std::cout << "FAIL: markup tier (" << fmt(tier.achieved_reduction(), 2)
                  << "x) not deeper than the image ladder (" << fmt(deepest_image, 2)
                  << "x) on page " << p << "\n";
        ok = false;
      }
      // The single file must parse back to the exact document it serialized.
      if (tier.kind == core::TierKind::kMarkupRewrite) {
        const auto& rewrite = tier.result.served.rewrite;
        if (rewrite == nullptr ||
            !(web::parse_markup(rewrite->blob) == web::rewrite_document(page))) {
          std::cout << "FAIL: markup blob round-trip mismatch on page " << p << "\n";
          ok = false;
        }
      }
    }
    ladders.push_back(std::move(tiers));
  }

  TextTable tiers_table({"tier", "mean KB", "mean reduction", "savings %", "QSS", "QFS",
                         "build ms"});
  const auto tier_row = [&](const char* name, const TierAgg& agg) {
    tiers_table.add_row({name, fmt(agg.mean(&TierAgg::bytes) / 1024.0, 1),
                         fmt(agg.mean(&TierAgg::reduction), 2) + "x",
                         fmt(agg.mean(&TierAgg::savings) * 100.0, 1),
                         fmt(agg.mean(&TierAgg::qss), 3), fmt(agg.mean(&TierAgg::qfs), 3),
                         fmt(agg.mean(&TierAgg::elapsed_ms), 1)});
  };
  tier_row("image (deepest)", image_deepest);
  tier_row("text-only", text_only);
  tier_row("markup-rewrite", markup);
  std::cout << tiers_table.render(2) << '\n';

  // PAW reachability per band: does the ladder reach 1/PAW, and which rungs
  // does it take? Bands chosen so the dataset's DVLU PAW range (1, 2.6]
  // spreads across rows.
  Band bands[] = {{"PAW 1.0-1.3", 1.0, 1.3},
                  {"PAW 1.3-1.6", 1.3, 1.6},
                  {"PAW 1.6-2.0", 1.6, 2.0},
                  {"PAW 2.0+", 2.0, 1e9}};
  const net::PlanType plan = net::PlanType::kDataVoiceLowUsage;
  for (const dataset::Country* country : dataset::countries_with_prices()) {
    const double paw = core::paw_index(*country, plan);
    if (paw <= 1.0) continue;  // already affordable: nothing to reach
    for (Band& band : bands) {
      if (paw < band.lo || paw >= band.hi) continue;
      ++band.countries;
      for (std::size_t p = 0; p < ladders.size(); ++p) {
        ++band.pairs;
        double image_best = 0.0, ladder_best = 0.0;
        for (const core::Tier& tier : ladders[p]) {
          ladder_best = std::max(ladder_best, tier.achieved_reduction());
          if (tier.kind == core::TierKind::kImage) {
            image_best = std::max(image_best, tier.achieved_reduction());
          }
        }
        if (image_best + 1e-9 >= paw) ++band.image_only;
        if (ladder_best + 1e-9 >= paw) ++band.with_ultra;
        const std::size_t idx = core::paw_tier(ladders[p], *country, plan);
        if (ladders[p][idx].kind != core::TierKind::kImage) ++band.served_ultra;
      }
      break;
    }
  }

  TextTable reach({"band", "countries", "% reach (image only)", "% reach (with ultra)",
                   "% served ultra tier"});
  int pairs_total = 0, image_total = 0, ultra_total = 0;
  for (const Band& band : bands) {
    if (band.pairs == 0) continue;
    const auto pct = [&](int k) { return fmt(100.0 * k / band.pairs, 1); };
    reach.add_row({band.label, std::to_string(band.countries), pct(band.image_only),
                   pct(band.with_ultra), pct(band.served_ultra)});
    pairs_total += band.pairs;
    image_total += band.image_only;
    ultra_total += band.with_ultra;
    if (band.with_ultra < band.image_only) {
      std::cout << "FAIL: appending ultra tiers lost reachability in band " << band.label
                << "\n";
      ok = false;
    }
  }
  std::cout << reach.render(2) << '\n';
  std::cout << "reachable pairs: " << image_total << "/" << pairs_total
            << " with the image ladder, " << ultra_total << "/" << pairs_total
            << " with ultra tiers appended\n";

  const double markup_savings = markup.mean(&TierAgg::savings);
  std::cout << "markup tier mean savings: " << fmt(markup_savings * 100.0, 1) << "% ("
            << fmt(markup.mean(&TierAgg::reduction), 2) << "x), built in "
            << fmt(markup.mean(&TierAgg::elapsed_ms), 1) << " ms\n";
  if (markup_savings < 0.85) {
    std::cout << "FAIL: markup tier mean savings " << fmt(markup_savings * 100.0, 1)
              << "% below the 85% acceptance bar\n";
    ok = false;
  }
  if (ultra_total < pairs_total) {
    // Informational, not a failure: the dataset's hardest PAW is ~2.6, so the
    // ultra rungs are expected to cover everything — say so if they do not.
    std::cout << "note: " << (pairs_total - ultra_total)
              << " pairs remain out of reach even at the markup tier\n";
  }

  write_json(json_path,
             {{"ultra_low/bytes_reduction", "x", markup.mean(&TierAgg::reduction)},
              {"ultra_low/text_only_reduction", "x", text_only.mean(&TierAgg::reduction)},
              {"ultra_low/markup_build_ms", "ms", markup.mean(&TierAgg::elapsed_ms)},
              {"ultra_low/paw_reachable_ratio", "ratio",
               pairs_total == 0 ? 0.0 : static_cast<double>(ultra_total) / pairs_total},
              {"ultra_low/paw_reachable_image_only_ratio", "ratio",
               pairs_total == 0 ? 0.0 : static_cast<double>(image_total) / pairs_total}});
  std::cout << (ok ? "PASS" : "FAIL") << "\n";
  return ok ? 0 : 1;
}
