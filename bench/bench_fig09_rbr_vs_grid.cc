// Fig. 9: RBR vs Grid Search — (a) CDF of the % QSS difference and (b) CDF
// of runtimes, across sites x reduction levels (5-60%).
#include <iostream>

#include "analysis/report.h"
#include "util/table.h"
#include "util/stats.h"

int main(int argc, char** argv) {
  using namespace aw4a;
  analysis::RbrGridOptions options;
  options.sites = argc > 1 ? std::atoi(argv[1]) : 12;
  options.grid_timeout_seconds = argc > 2 ? std::atof(argv[2]) : 2.0;
  analysis::print_header(
      std::cout, "Fig. 9 — RBR vs Grid Search",
      "avg QSS gap -0.76% (worst -6.1%), RBR wins 18% of cases; RBR ~15.9x "
      "faster; Grid Search timed out on 40/171 runs (3h budget)",
      std::to_string(options.sites) + " sites x reductions 5-60% (Qt=0.9), grid timeout " +
          fmt(options.grid_timeout_seconds, 1) + "s");

  const auto rows = analysis::compare_rbr_grid(options);
  std::vector<double> qss_diffs;
  std::vector<double> rbr_times;
  std::vector<double> grid_times;
  int timeouts = 0;
  int rbr_wins = 0;
  for (const auto& row : rows) {
    if (row.grid_timed_out) ++timeouts;
    if (!row.both_met_target) continue;
    qss_diffs.push_back(row.qss_diff_pct);
    rbr_times.push_back(row.rbr_seconds);
    grid_times.push_back(row.grid_seconds);
    if (row.qss_diff_pct > 1e-9) ++rbr_wins;
  }
  std::cout << "comparable runs (both met target): " << qss_diffs.size() << " of "
            << rows.size() << "; grid timeouts: " << timeouts << "\n\n";
  if (qss_diffs.empty()) return 0;

  analysis::print_cdf(std::cout, "qss_diff_pct", qss_diffs);
  analysis::print_cdf(std::cout, "rbr_seconds", rbr_times);
  analysis::print_cdf(std::cout, "grid_seconds", grid_times);

  analysis::print_compare(std::cout, "mean QSS difference", -0.76, mean(qss_diffs), "%");
  analysis::print_compare(std::cout, "worst QSS difference", -6.1, min_of(qss_diffs), "%");
  analysis::print_compare(std::cout, "RBR win rate", 18.0,
                          100.0 * rbr_wins / static_cast<double>(qss_diffs.size()), "%");
  analysis::print_compare(std::cout, "grid/rbr time ratio", 15.9,
                          mean(grid_times) / std::max(1e-9, mean(rbr_times)), "x");
  return 0;
}
