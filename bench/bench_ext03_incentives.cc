// Extension (paper §9): the operator's incentive computed. Revenue as a
// function of the tier depth in two markets — the "differentiated service
// offering can increase revenue" argument, with numbers.
#include <iostream>

#include "analysis/report.h"
#include "econ/incentives.h"
#include "util/rng.h"
#include "util/table.h"

int main() {
  using namespace aw4a;
  analysis::print_header(
      std::cout, "Extension — §9 stakeholder incentives",
      "the paper argues lighter tiers bring priced-out users online and raise "
      "ad revenue, but does not quantify it",
      "lognormal income model; users online when 100 accesses/month fit 0.5% "
      "of income; CPM revenue");

  const double original_page = 2.47e6;  // bytes
  const double reductions[] = {1.0, 1.25, 1.5, 2.0, 3.0, 4.5, 6.0};

  struct Market {
    const char* label;
    econ::MarketModel model;
  };
  std::vector<Market> markets;
  {
    econ::MarketModel developing;
    developing.mean_monthly_income_usd = 180.0;
    developing.income_sigma = 1.0;
    developing.usd_per_gb = 2.5;
    markets.push_back({"developing market (GNI $2.2k, $2.5/GB)", developing});
  }
  {
    econ::MarketModel developed;
    developed.mean_monthly_income_usd = 3200.0;
    developed.income_sigma = 0.6;
    developed.usd_per_gb = 3.0;
    markets.push_back({"developed market (GNI $38k, $3/GB)", developed});
  }

  Rng rng(909);
  for (const auto& market : markets) {
    std::cout << "--- " << market.label << " ---\n";
    TextTable table({"tier", "users online", "monthly accesses", "ad revenue/mo"});
    double base_revenue = 0;
    double best_revenue = 0;
    double best_reduction = 1.0;
    for (double r : reductions) {
      Rng run = rng.fork(static_cast<std::uint64_t>(r * 1000) ^ stable_hash(market.label));
      const auto outcome =
          econ::evaluate_market(run, market.model, original_page / r);
      if (r == 1.0) base_revenue = outcome.ad_revenue_usd;
      if (outcome.ad_revenue_usd > best_revenue) {
        best_revenue = outcome.ad_revenue_usd;
        best_reduction = r;
      }
      table.add_row({fmt(r, 2) + "x", fmt(outcome.users_online, 0),
                     fmt(outcome.monthly_accesses, 0),
                     "$" + fmt(outcome.ad_revenue_usd, 0)});
    }
    std::cout << table.render(2);
    std::cout << "  revenue-optimal tier: " << fmt(best_reduction, 2) << "x  ("
              << fmt(base_revenue > 0 ? best_revenue / base_revenue : 0, 2)
              << "x the original page's revenue)\n\n";
  }
  // §3.2's within-country inequality, reproduced.
  {
    Rng qr(11);
    const double bottom = econ::quintile_price_share(0.96, 0.6, 1, qr);
    std::cout << "within-country inequality (paper §3.2, Pakistan): average share "
                 "0.96% of GNI -> bottom-quintile share "
              << fmt(bottom, 2) << "% (paper: ~2.5%)\n\n";
  }
  std::cout << "expected: in the developing market, deeper tiers multiply revenue\n"
               "(priced-out users come online); in the developed market the curve is\n"
               "nearly flat (everyone already affords the original) — the paper's\n"
               "'differentiated offering' argument in one table.\n";
  return 0;
}
