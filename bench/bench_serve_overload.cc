// Open-loop overload benchmark of the serving build plane.
//
// The closed-loop predecessor (bench_serve_cache) measured cache speedups,
// but a closed loop cannot see overload: its arrival rate falls to whatever
// the server sustains, so saturation never shows up as queueing delay or
// shedding. This bench drives an *open-loop* Zipf(1.0) arrival process at
// fixed multiples of the build plane's measured capacity and reports what
// the paper's affordability story needs under flash crowds: goodput held
// near capacity, overload answered with fast degraded 200s (never 5xx),
// and tail sojourn bounded by admission control instead of growing without
// bound.
//
// Phases:
//   A  capacity    closed-loop cold builds (cache off, one thread per build
//                  worker, distinct sites) -> build-plane capacity in req/s.
//   B  shed floor  a capacity-0 origin sheds every request; its service-time
//                  p99.9 x margin is the *shed fast-path bound* that
//                  overloaded shed answers must stay under.
//   C  sweep       open-loop arrivals at {0.5,1,2,4,10}x capacity against a
//                  fresh origin per rate (cache off so every data-saving
//                  request demands a build). Sojourn is measured from the
//                  *scheduled* arrival time, so backlog shows up as latency.
//   D  storm       a warm cached origin at 4x build capacity takes a mid-run
//                  invalidate_host burst across every site: goodput must hold
//                  (stale-while-revalidate) while rebuilds re-admit at a
//                  bounded rate.
//
// The bench pins a deliberately small build plane (queue capacity 8, 4
// workers): a thread-bounded generator can only hold `threads` requests in
// flight, so saturation must be reachable below that. The generator claims
// arrival slots from a shared counter — a thread stuck in a long build never
// strands the arrivals behind it, the next free thread picks them up.
//
// Exit status is the acceptance check (run by tier1.sh): non-zero when the
// 4x row shows any non-200 answer or internal error, when 4x goodput falls
// below 80% of the 1x row, or when the 4x shed p99.9 exceeds the phase-B
// bound.
//
//   build/bench/bench_serve_overload [--sites=40] [--threads=32]
//       [--seconds=3] [--zipf=1.0] [--json=BENCH_serving.json]
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "dataset/corpus.h"
#include "serving/origin.h"
#include "util/rng.h"

namespace {

using namespace aw4a;
using Clock = std::chrono::steady_clock;

struct BenchOptions {
  std::size_t sites = 40;
  std::size_t threads = 32;
  double seconds = 3.0;  ///< duration of each phase / sweep point
  double zipf_s = 1.0;
  std::string json_path = "BENCH_serving.json";
};

/// The build plane under test: small enough that a thread-bounded generator
/// can saturate it (threads > capacity + workers).
constexpr std::size_t kQueueCapacity = 8;
constexpr int kQueueWorkers = 4;
/// Phase-B margin: overloaded shed answers may be this much slower than the
/// unloaded shed fast path before the bench fails.
constexpr double kShedBoundMargin = 5.0;
constexpr double kShedBoundFloorMs = 2.0;

struct Entry {
  std::string name;
  std::string unit;
  double value = 0.0;
};

void write_json(const std::string& path, const std::vector<Entry>& entries) {
  std::ofstream out(path);
  out << "[\n";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    char value[64];
    std::snprintf(value, sizeof(value), "%.6g", entries[i].value);
    out << "  {\"name\": \"" << entries[i].name << "\", \"unit\": \"" << entries[i].unit
        << "\", \"value\": " << value << "}" << (i + 1 < entries.size() ? "," : "") << "\n";
  }
  out << "]\n";
}

double percentile(std::vector<double>& sorted_or_raw, double q) {
  if (sorted_or_raw.empty()) return 0.0;
  std::sort(sorted_or_raw.begin(), sorted_or_raw.end());
  const auto index =
      static_cast<std::size_t>(q * static_cast<double>(sorted_or_raw.size() - 1));
  return sorted_or_raw[index];
}

std::vector<serving::OriginSite> make_corpus(const BenchOptions& options) {
  dataset::CorpusGenerator gen(dataset::CorpusOptions{.seed = 1729, .rich = true});
  Rng rng(1729);
  core::DeveloperConfig config;
  config.tier_reductions = {2.0};
  config.min_image_ssim = 0.8;
  config.measure_qfs = false;
  std::vector<serving::OriginSite> sites;
  sites.reserve(options.sites);
  for (std::size_t i = 0; i < options.sites; ++i) {
    const Bytes target = from_kb(rng.uniform(150.0, 400.0));
    sites.push_back(serving::OriginSite{
        "site-" + std::to_string(i) + ".example",
        gen.make_page(rng, target, gen.global_profile()),
        config,
        net::PlanType::kDataVoiceLowUsage,
    });
  }
  return sites;
}

net::HttpRequest make_request(const std::string& host, int variant) {
  net::HttpRequest request;
  request.headers.push_back({"Host", host});
  request.headers.push_back({"Save-Data", "on"});
  switch (variant % 3) {
    case 0: request.headers.push_back({"X-Geo-Country", "ET"}); break;
    case 1: request.headers.push_back({"X-Geo-Country", "PK"}); break;
    default: request.headers.push_back({"AW4A-Savings", "50"}); break;
  }
  return request;
}

serving::OriginOptions plane_options() {
  serving::OriginOptions options;
  options.build_queue.capacity = kQueueCapacity;
  options.build_queue.workers = kQueueWorkers;
  // This bench measures the *build plane* under load, so every build must
  // cost real encode work: with the content-addressed asset store on,
  // repeated cold builds of one site collapse into memo adoptions and the
  // measured "capacity" becomes store throughput, not build throughput.
  options.asset_store_enabled = false;
  return options;
}

// --------------------------------------------------------------------------
// Phase A: build-plane capacity (req/s of pure cold builds).
// --------------------------------------------------------------------------
double measure_capacity(const std::vector<serving::OriginSite>& sites,
                        const BenchOptions& options) {
  serving::OriginOptions origin_options = plane_options();
  origin_options.cache_enabled = false;  // every request is a build
  const serving::OriginServer origin(sites, std::move(origin_options));

  std::atomic<std::uint64_t> completed{0};
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kQueueWorkers; ++t) {
    threads.emplace_back([&, t] {
      // Distinct sites per thread: no single-flight collapsing, so this
      // measures raw build throughput, workers fully busy, queue empty.
      std::size_t i = static_cast<std::size_t>(t);
      int variant = t;
      while (!stop.load(std::memory_order_acquire)) {
        const auto response = origin.handle(make_request(sites[i % sites.size()].host, variant++));
        if (response.status == 200) completed.fetch_add(1, std::memory_order_relaxed);
        i += static_cast<std::size_t>(kQueueWorkers);
      }
    });
  }
  const auto start = Clock::now();
  std::this_thread::sleep_for(std::chrono::duration<double>(options.seconds));
  stop.store(true, std::memory_order_release);
  for (auto& thread : threads) thread.join();
  const double elapsed = std::chrono::duration<double>(Clock::now() - start).count();
  return static_cast<double>(completed.load()) / elapsed;
}

// --------------------------------------------------------------------------
// Phase B: the unloaded shed fast path (capacity 0 -> every request sheds).
// --------------------------------------------------------------------------
double measure_shed_floor_p999_ms(const std::vector<serving::OriginSite>& sites) {
  serving::OriginOptions origin_options = plane_options();
  origin_options.build_queue.capacity = 0;
  const serving::OriginServer origin(sites, std::move(origin_options));

  constexpr std::size_t kSamplesPerThread = 2000;
  constexpr std::size_t kThreads = 4;
  std::vector<std::vector<double>> samples(kThreads);
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      samples[t].reserve(kSamplesPerThread);
      int variant = static_cast<int>(t);
      for (std::size_t i = 0; i < kSamplesPerThread; ++i) {
        const auto started = Clock::now();
        const auto response = origin.handle(make_request(sites[i % sites.size()].host, variant++));
        const double ms = std::chrono::duration<double, std::milli>(Clock::now() - started).count();
        if (response.status == 200 && response.header("Retry-After") != nullptr) {
          samples[t].push_back(ms);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  std::vector<double> all;
  for (auto& s : samples) all.insert(all.end(), s.begin(), s.end());
  return percentile(all, 0.999);
}

// --------------------------------------------------------------------------
// Phase C/D shared open-loop generator.
// --------------------------------------------------------------------------
struct OpenLoopResult {
  double multiplier = 0.0;
  double rate_rps = 0.0;  ///< offered arrival rate
  std::uint64_t sent = 0;
  std::uint64_t good = 0;  ///< 200 and not shed
  std::uint64_t shed = 0;  ///< 200 with Retry-After
  std::uint64_t errors = 0;  ///< any non-200 answer
  std::uint64_t internal_errors = 0;
  std::uint64_t stale_served = 0;
  std::uint64_t refresh_sheds = 0;
  double elapsed_seconds = 0.0;
  double sojourn_p50_ms = 0.0;
  double sojourn_p99_ms = 0.0;
  double sojourn_p999_ms = 0.0;
  double shed_service_p99_ms = 0.0;
  double shed_service_p999_ms = 0.0;

  double goodput() const {
    return elapsed_seconds == 0.0 ? 0.0 : static_cast<double>(good) / elapsed_seconds;
  }
  double shed_rate() const {
    return sent == 0 ? 0.0 : static_cast<double>(shed) / static_cast<double>(sent);
  }
};

/// Open-loop run against `origin` at `rate_rps` for `seconds`. Arrival slots
/// are claimed from a shared counter: slot i is scheduled at start + i/rate,
/// a free thread sleeps until then, issues the request, and measures sojourn
/// from the *scheduled* time — so requests delayed because every generator
/// thread was stuck behind slow builds are charged that delay, as a queueing
/// system would charge them. `invalidate_all_at_seconds` >= 0 fires an
/// invalidate_host burst across every site once, at that offset (phase D).
OpenLoopResult run_open_loop(serving::OriginServer& origin,
                             const std::vector<serving::OriginSite>& sites, double rate_rps,
                             double seconds, const BenchOptions& options,
                             double invalidate_all_at_seconds = -1.0) {
  const double interval = 1.0 / rate_rps;
  const auto start = Clock::now();
  const auto end = start + std::chrono::duration_cast<Clock::duration>(
                               std::chrono::duration<double>(seconds));
  std::atomic<std::uint64_t> next_slot{0};
  std::atomic<std::uint64_t> good{0}, shed{0}, errors{0};
  std::atomic<bool> invalidated{false};
  std::vector<std::vector<double>> sojourns(options.threads);
  std::vector<std::vector<double>> shed_service(options.threads);

  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < options.threads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng = Rng(97).fork(t);
      auto& my_sojourns = sojourns[t];
      auto& my_shed = shed_service[t];
      int variant = static_cast<int>(t);
      while (true) {
        const std::uint64_t slot = next_slot.fetch_add(1, std::memory_order_relaxed);
        const auto scheduled =
            start + std::chrono::duration_cast<Clock::duration>(
                        std::chrono::duration<double>(static_cast<double>(slot) * interval));
        if (scheduled >= end) return;
        std::this_thread::sleep_until(scheduled);
        if (invalidate_all_at_seconds >= 0.0 &&
            std::chrono::duration<double>(Clock::now() - start).count() >=
                invalidate_all_at_seconds &&
            !invalidated.exchange(true)) {
          for (const auto& site : sites) origin.invalidate_host(site.host);
        }
        const std::size_t rank = rng.zipf(sites.size(), options.zipf_s);
        const auto issued = Clock::now();
        const auto response = origin.handle(make_request(sites[rank - 1].host, variant++));
        const auto finished = Clock::now();
        my_sojourns.push_back(
            std::chrono::duration<double, std::milli>(finished - scheduled).count());
        if (response.status != 200) {
          errors.fetch_add(1, std::memory_order_relaxed);
        } else if (response.header("Retry-After") != nullptr) {
          shed.fetch_add(1, std::memory_order_relaxed);
          my_shed.push_back(std::chrono::duration<double, std::milli>(finished - issued).count());
        } else {
          good.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  const double elapsed = std::chrono::duration<double>(Clock::now() - start).count();

  std::vector<double> all_sojourns, all_shed;
  for (auto& s : sojourns) all_sojourns.insert(all_sojourns.end(), s.begin(), s.end());
  for (auto& s : shed_service) all_shed.insert(all_shed.end(), s.begin(), s.end());

  OpenLoopResult result;
  result.rate_rps = rate_rps;
  result.sent = all_sojourns.size();
  result.good = good.load();
  result.shed = shed.load();
  result.errors = errors.load();
  result.elapsed_seconds = elapsed;
  result.sojourn_p50_ms = percentile(all_sojourns, 0.50);
  result.sojourn_p99_ms = percentile(all_sojourns, 0.99);
  result.sojourn_p999_ms = percentile(all_sojourns, 0.999);
  result.shed_service_p99_ms = percentile(all_shed, 0.99);
  result.shed_service_p999_ms = percentile(all_shed, 0.999);
  const serving::MetricsSnapshot metrics = origin.metrics();
  result.internal_errors = metrics.internal_errors;
  result.stale_served = metrics.ladder_stale;
  result.refresh_sheds = metrics.stale_refresh_sheds;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  BenchOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    const auto value = [&](std::string_view prefix) -> const char* {
      return arg.substr(prefix.size()).data();
    };
    if (arg.starts_with("--sites=")) {
      options.sites = static_cast<std::size_t>(std::strtoul(value("--sites="), nullptr, 10));
    } else if (arg.starts_with("--threads=")) {
      options.threads = static_cast<std::size_t>(std::strtoul(value("--threads="), nullptr, 10));
    } else if (arg.starts_with("--seconds=")) {
      options.seconds = std::strtod(value("--seconds="), nullptr);
    } else if (arg.starts_with("--zipf=")) {
      options.zipf_s = std::strtod(value("--zipf="), nullptr);
    } else if (arg.starts_with("--json=")) {
      options.json_path = std::string(arg.substr(7));
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
      return 2;
    }
  }

  std::printf("# bench_serve_overload: %zu sites, %zu generator threads, %.2fs per phase, "
              "Zipf(%.2f), plane capacity=%zu workers=%d\n",
              options.sites, options.threads, options.seconds, options.zipf_s, kQueueCapacity,
              kQueueWorkers);
  std::printf("# generating corpus...\n");
  const auto sites = make_corpus(options);

  // Phase A: what can the build plane actually sustain?
  const double capacity_rps = measure_capacity(sites, options);
  std::printf("# build-plane capacity: %.1f req/s (cold builds, %d workers)\n", capacity_rps,
              kQueueWorkers);

  // Phase B: how fast is shedding when nothing else is going on?
  const double shed_floor_p999_ms = measure_shed_floor_p999_ms(sites);
  const double shed_bound_ms =
      std::max(kShedBoundFloorMs, kShedBoundMargin * shed_floor_p999_ms);
  std::printf("# shed fast path: p99.9 %.3f ms unloaded -> overload bound %.3f ms\n",
              shed_floor_p999_ms, shed_bound_ms);

  // Phase C: the open-loop sweep. Fresh origin per rate so each point starts
  // from the same cold state; cache off so every data-saving request demands
  // a build and the arrival multiple is a true build-plane multiple.
  const std::vector<double> multipliers = {0.5, 1.0, 2.0, 4.0, 10.0};
  std::vector<OpenLoopResult> sweep;
  for (const double m : multipliers) {
    serving::OriginOptions origin_options = plane_options();
    origin_options.cache_enabled = false;
    serving::OriginServer origin(sites, std::move(origin_options));
    OpenLoopResult r =
        run_open_loop(origin, sites, m * capacity_rps, options.seconds, options);
    r.multiplier = m;
    sweep.push_back(r);
    std::printf("# %4.1fx done: goodput %.1f req/s, shed %.1f%%, errors %llu\n", m, r.goodput(),
                100.0 * r.shed_rate(), static_cast<unsigned long long>(r.errors));
  }

  // Phase D: invalidation storm against a warm cached origin at 4x build
  // capacity — stale-while-revalidate must hold goodput at cache speed.
  OpenLoopResult storm;
  {
    serving::OriginServer origin(sites, plane_options());
    for (std::size_t i = 0; i < sites.size(); ++i) {  // warm every ladder
      (void)origin.handle(make_request(sites[i].host, 0));
    }
    storm = run_open_loop(origin, sites, 4.0 * capacity_rps, options.seconds, options,
                          options.seconds / 2.0);
    std::printf("# storm done: goodput %.1f req/s, stale served %llu, refresh sheds %llu\n",
                storm.goodput(), static_cast<unsigned long long>(storm.stale_served),
                static_cast<unsigned long long>(storm.refresh_sheds));
  }

  std::printf("\n%-8s %9s %10s %8s %9s %9s %9s %9s %7s\n", "load", "sent", "goodput",
              "shed%", "p50(ms)", "p99(ms)", "p999(ms)", "shedp999", "errors");
  for (const OpenLoopResult& r : sweep) {
    std::printf("%5.1fx   %9llu %10.1f %7.1f%% %9.2f %9.2f %9.2f %9.3f %7llu\n", r.multiplier,
                static_cast<unsigned long long>(r.sent), r.goodput(), 100.0 * r.shed_rate(),
                r.sojourn_p50_ms, r.sojourn_p99_ms, r.sojourn_p999_ms, r.shed_service_p999_ms,
                static_cast<unsigned long long>(r.errors));
  }
  std::printf("storm    %9llu %10.1f %7.1f%% %9.2f %9.2f %9.2f %9.3f %7llu\n",
              static_cast<unsigned long long>(storm.sent), storm.goodput(),
              100.0 * storm.shed_rate(), storm.sojourn_p50_ms, storm.sojourn_p99_ms,
              storm.sojourn_p999_ms, storm.shed_service_p999_ms,
              static_cast<unsigned long long>(storm.errors));

  std::vector<Entry> entries;
  entries.push_back({"capacity/build_rps", "req_per_s", capacity_rps});
  entries.push_back({"shed_fast_path/p999_ms", "ms", shed_floor_p999_ms});
  entries.push_back({"shed_fast_path/bound_ms", "ms", shed_bound_ms});
  const auto label = [](double m) {
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), m < 1.0 ? "overload_%.1fx" : "overload_%.0fx", m);
    return std::string(buffer);
  };
  for (const OpenLoopResult& r : sweep) {
    const std::string prefix = label(r.multiplier);
    entries.push_back({prefix + "/goodput", "req_per_s", r.goodput()});
    entries.push_back({prefix + "/shed_rate", "ratio", r.shed_rate()});
    entries.push_back({prefix + "/sojourn_p50_ms", "ms", r.sojourn_p50_ms});
    entries.push_back({prefix + "/sojourn_p99_ms", "ms", r.sojourn_p99_ms});
    entries.push_back({prefix + "/sojourn_p999_ms", "ms", r.sojourn_p999_ms});
    entries.push_back({prefix + "/shed_service_p99_ms", "ms", r.shed_service_p99_ms});
    entries.push_back({prefix + "/shed_service_p999_ms", "ms", r.shed_service_p999_ms});
    entries.push_back({prefix + "/errors", "count", static_cast<double>(r.errors)});
  }
  const OpenLoopResult& one_x = sweep[1];
  const OpenLoopResult& four_x = sweep[3];
  const double goodput_ratio =
      one_x.goodput() == 0.0 ? 0.0 : four_x.goodput() / one_x.goodput();
  entries.push_back({"overload_4x_vs_1x_goodput", "ratio", goodput_ratio});
  entries.push_back({"invalidation_storm/goodput", "req_per_s", storm.goodput()});
  entries.push_back({"invalidation_storm/sojourn_p99_ms", "ms", storm.sojourn_p99_ms});
  entries.push_back({"invalidation_storm/errors", "count", static_cast<double>(storm.errors)});
  write_json(options.json_path, entries);
  std::printf("wrote %s\n", options.json_path.c_str());

  // Acceptance: the contract this bench exists to hold.
  int violations = 0;
  const auto fail = [&](const char* format, auto... args) {
    std::fprintf(stderr, format, args...);
    ++violations;
  };
  if (four_x.errors != 0 || four_x.internal_errors != 0) {
    fail("ACCEPTANCE: 4x overload produced %llu non-200 answers, %llu internal errors "
         "(both must be 0)\n",
         static_cast<unsigned long long>(four_x.errors),
         static_cast<unsigned long long>(four_x.internal_errors));
  }
  if (four_x.goodput() < 0.8 * one_x.goodput()) {
    fail("ACCEPTANCE: 4x goodput %.1f req/s fell below 80%% of 1x goodput %.1f req/s "
         "(congestion collapse)\n",
         four_x.goodput(), one_x.goodput());
  }
  if (four_x.shed > 0 && four_x.shed_service_p999_ms > shed_bound_ms) {
    fail("ACCEPTANCE: 4x shed-path p99.9 %.3f ms exceeds the fast-path bound %.3f ms\n",
         four_x.shed_service_p999_ms, shed_bound_ms);
  }
  if (storm.errors != 0 || storm.internal_errors != 0) {
    fail("ACCEPTANCE: invalidation storm produced %llu non-200 answers, %llu internal "
         "errors (both must be 0)\n",
         static_cast<unsigned long long>(storm.errors),
         static_cast<unsigned long long>(storm.internal_errors));
  }
  if (violations == 0) std::printf("acceptance: all overload contracts held\n");
  return violations == 0 ? 0 : 1;
}
