// Extension (paper §10 "Non-landing pages and caching"): what a browsing
// *session* costs when users navigate past the landing page, and how much
// sitewide asset sharing (CSS/fonts/first-party JS/chrome images) recovers.
#include <iostream>

#include "analysis/report.h"
#include "dataset/corpus.h"
#include "net/cache.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace aw4a;
  const int sites = argc > 1 ? std::atoi(argv[1]) : 12;
  const int inner_per_site = 3;
  analysis::print_header(
      std::cout, "Extension — inner pages & within-site caching",
      "the paper defers inner pages to future work; Aqeel et al. (IMC '20) "
      "show they differ structurally from landing pages",
      std::to_string(sites) + " sites x (landing + " + std::to_string(inner_per_site) +
          " inner pages); sitewide assets shared by object id");

  dataset::CorpusGenerator gen(dataset::CorpusOptions{.seed = 777});
  Rng rng(777);
  std::vector<double> landing_mb;
  std::vector<double> inner_mb;
  std::vector<double> session_cold_mb;    // landing + inner, no cache
  std::vector<double> session_shared_mb;  // with within-site cache hits
  for (int s = 0; s < sites; ++s) {
    const auto site = gen.make_site(rng, from_mb(rng.uniform(1.8, 3.2)),
                                    gen.global_profile(), inner_per_site);
    landing_mb.push_back(to_mb(site.landing.transfer_size()));

    // A session: the landing page, then each inner page; shared objects are
    // fetched once (cold cache at session start).
    net::LruByteCache cache(512 * kMB);
    Bytes with_sharing = 0;
    Bytes without_sharing = site.landing.transfer_size();
    for (const auto& o : site.landing.objects) {
      with_sharing += cache.fetch(web::to_cache_item(o), 0);
    }
    for (const auto& page : site.inner) {
      inner_mb.push_back(to_mb(page.transfer_size()));
      without_sharing += page.transfer_size();
      for (const auto& o : page.objects) {
        with_sharing += cache.fetch(web::to_cache_item(o), 1);
      }
    }
    session_cold_mb.push_back(to_mb(without_sharing));
    session_shared_mb.push_back(to_mb(with_sharing));
  }

  TextTable table({"quantity", "mean MB"});
  table.add_row({"landing page", fmt(mean(landing_mb), 2)});
  table.add_row({"inner page", fmt(mean(inner_mb), 2)});
  table.add_row({"4-page session, no sharing", fmt(mean(session_cold_mb), 2)});
  table.add_row({"4-page session, shared assets", fmt(mean(session_shared_mb), 2)});
  std::cout << table.render(2) << '\n';

  const double saving = 1.0 - mean(session_shared_mb) / mean(session_cold_mb);
  std::cout << "within-site sharing saves " << fmt(saving * 100, 1)
            << "% of session bytes\n";
  std::cout << "inner/landing size ratio: " << fmt(mean(inner_mb) / mean(landing_mb), 2)
            << "  (IMC'20: inner pages are substantially lighter)\n";
  std::cout << "\nimplication for PAW: a session-based W_avg is "
            << fmt(mean(session_shared_mb) / 4.0, 2)
            << " MB/page vs the landing-only " << fmt(mean(landing_mb), 2)
            << " MB — landing-only PAW (the paper's, and ours) is conservative\n";
  return 0;
}
