// Microbenchmarks: codec and SSIM throughput — the per-variant cost that
// dominates ladder enumeration (and hence both optimizers).
#include <benchmark/benchmark.h>

#include "imaging/codec.h"
#include "imaging/resize.h"
#include "imaging/ssim.h"
#include "imaging/synth.h"
#include "util/rng.h"

namespace {

using namespace aw4a;

imaging::Raster photo(int dim) {
  Rng rng(42);
  return imaging::synth_image(rng, imaging::ImageClass::kPhoto, dim, dim);
}

void BM_JpegEncode(benchmark::State& state) {
  const imaging::Raster img = photo(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(imaging::jpeg_encode(img, 80).bytes);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_JpegEncode)->Arg(64)->Arg(128);

void BM_WebpEncode(benchmark::State& state) {
  const imaging::Raster img = photo(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(imaging::webp_encode(img, 80).bytes);
  }
}
BENCHMARK(BM_WebpEncode)->Arg(64)->Arg(128);

void BM_PngEncode(benchmark::State& state) {
  const imaging::Raster img = photo(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(imaging::png_encode(img).bytes);
  }
}
BENCHMARK(BM_PngEncode)->Arg(64)->Arg(128);

void BM_Ssim(benchmark::State& state) {
  const imaging::Raster a = photo(static_cast<int>(state.range(0)));
  imaging::Raster b = a;
  b.at(1, 1).r ^= 0xFF;
  for (auto _ : state) {
    benchmark::DoNotOptimize(imaging::ssim(a, b));
  }
}
BENCHMARK(BM_Ssim)->Arg(64)->Arg(128)->Arg(256);

void BM_SsimDense(benchmark::State& state) {
  const imaging::Raster a = photo(128);
  const imaging::Raster b = photo(128);
  for (auto _ : state) {
    benchmark::DoNotOptimize(imaging::ssim(a, b, {.window = 8, .stride = 1}));
  }
}
BENCHMARK(BM_SsimDense);

void BM_ResizeBox(benchmark::State& state) {
  const imaging::Raster img = photo(128);
  for (auto _ : state) {
    benchmark::DoNotOptimize(imaging::resize_box(img, 64, 64).width());
  }
}
BENCHMARK(BM_ResizeBox);

}  // namespace

BENCHMARK_MAIN();
