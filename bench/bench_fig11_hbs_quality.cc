// Fig. 11: QSS, QFS and overall quality of pages reduced by the full HBS
// (Muzeel + RBR) across unique URLs.
#include <iostream>

#include "analysis/report.h"
#include "util/table.h"
#include "util/stats.h"

int main(int argc, char** argv) {
  using namespace aw4a;
  analysis::HbsQualityOptions options;
  options.sites = argc > 1 ? std::atoi(argv[1]) : 24;
  analysis::print_header(
      std::cout, "Fig. 11 — HBS quality vs reduction",
      "60 URLs reduced 10-88% (median 43.3%); 25% keep quality 1.0, 50% keep "
      ">= 0.98; the 10 deepest (77-88%) average 0.72",
      std::to_string(options.sites) +
          " rich pages, 30% target (Muzeel's unadjustable reduction spreads it)");

  const auto points = analysis::hbs_quality_sweep(options);
  std::cout << "series url,reduction_pct,qss,qfs,quality\n";
  std::vector<double> reductions;
  std::vector<double> qualities;
  for (const auto& p : points) {
    std::cout << "  " << p.url << "," << fmt(p.reduction_pct, 1) << "," << fmt(p.qss, 4)
              << "," << fmt(p.qfs, 4) << "," << fmt(p.quality, 4) << '\n';
    reductions.push_back(p.reduction_pct);
    qualities.push_back(p.quality);
  }
  std::cout << '\n';
  analysis::print_summary(std::cout, "reduction_pct", reductions);
  analysis::print_summary(std::cout, "quality", qualities);

  const double frac_perfect =
      ecdf_at(qualities, 0.999999) < 1.0 ? 1.0 - ecdf_at(qualities, 0.999999) : 0.0;
  const double frac_high = 1.0 - ecdf_at(qualities, 0.98 - 1e-9);
  analysis::print_compare(std::cout, "share with quality = 1.0", 25.0, frac_perfect * 100,
                          "%");
  analysis::print_compare(std::cout, "share with quality >= 0.98", 50.0, frac_high * 100,
                          "%");
  analysis::print_compare(std::cout, "median reduction", 43.3, median(reductions), "%");
  return 0;
}
