// Fig. 3b + Fig. 14a: CDFs of the country-level page-size reduction from
// removing a single resource type (images / JS / CSS / fonts), +-cache.
#include <iostream>

#include "analysis/report.h"
#include "util/stats.h"

int main(int argc, char** argv) {
  using namespace aw4a;
  analysis::AnalysisOptions options;
  if (argc > 1) options.pages_per_country = std::atoi(argv[1]);
  analysis::print_header(
      std::cout, "Fig. 3b / Fig. 14a — what-if, single resource type",
      "removal reduces pages 1.4-4.2x (images), 1.1-1.7x (JS); cached: "
      "1.3-4.1x and 1.1-1.9x",
      "per-country mean byte composition over synthetic corpora");

  const auto stats = analysis::measure_countries(options);
  const struct {
    const char* label;
    web::ObjectType type;
  } singles[] = {{"no_images", web::ObjectType::kImage},
                 {"no_js", web::ObjectType::kJs},
                 {"no_css", web::ObjectType::kCss},
                 {"no_fonts", web::ObjectType::kFont}};
  for (const auto& s : singles) {
    const web::ObjectType removed[] = {s.type};
    for (bool cached : {false, true}) {
      auto ratios = analysis::removal_ratios(stats, removed, cached);
      const std::string name = std::string(s.label) + (cached ? "_cached" : "");
      std::cout << "  " << name << ": " << summarize(ratios) << '\n';
      analysis::print_cdf(std::cout, name, std::move(ratios));
    }
  }
  return 0;
}
