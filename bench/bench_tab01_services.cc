// Table 1: the data-saving mechanisms of existing services, demonstrated on
// the same page so their design points are directly comparable to AW4A's.
#include <iostream>

#include "baselines/brave.h"
#include "baselines/freebasics.h"
#include "baselines/operamini.h"
#include "baselines/weblight.h"
#include "core/pipeline.h"
#include "core/quality.h"
#include "dataset/corpus.h"
#include "analysis/report.h"
#include "util/rng.h"
#include "util/table.h"

int main() {
  using namespace aw4a;
  analysis::print_header(
      std::cout, "Table 1 — existing data-saving services",
      "each service targets an extreme design point: large savings, large "
      "quality loss, no operator control (and, for the proxies, broken TLS)",
      "every mechanism applied to the same 2.2 MB synthetic page; AW4A shown "
      "at a matched byte budget for contrast");

  dataset::CorpusGenerator gen(dataset::CorpusOptions{.seed = 9, .rich = true});
  Rng rng(9);
  const web::WebPage page = gen.make_page(rng, from_mb(2.2), gen.global_profile());
  Rng brave_rng(10);

  struct Row {
    std::string name;
    baselines::BaselineResult result;
    std::string mechanism;
  };
  std::vector<Row> rows;
  rows.push_back({"Free Basics", baselines::freebasics_filter(page),
                  "no JS / iframes / video / large images (platform rules)"});
  rows.push_back({"Web Light", baselines::weblight_transcode(page),
                  "removes JS, resizes large images, inlines CSS"});
  rows.push_back({"Opera Mini", baselines::operamini_transcode(page),
                  "proxy recompression; subset of DOM events"});
  baselines::BraveOptions blocked;
  blocked.block_scripts = true;
  rows.push_back({"Brave (block scripts)", baselines::brave_transcode(page, brave_rng, blocked),
                  "drops ads/trackers + third-party JS (whitelist)"});

  TextTable table({"service", "bytes", "reduction", "QSS", "QFS", "broken?", "mechanism"});
  for (const auto& row : rows) {
    const auto quality = core::evaluate_quality(row.result.served);
    table.add_row({row.name, format_bytes(row.result.result_bytes),
                   fmt(row.result.reduction_pct, 1) + "%", fmt(quality.qss, 3),
                   fmt(quality.qfs, 3), row.result.page_broken ? "yes" : "no",
                   row.mechanism});
  }

  // AW4A at Web Light's budget, for contrast.
  const Bytes weblight_bytes = rows[1].result.result_bytes;
  core::DeveloperConfig config;
  config.min_image_ssim = 0.8;
  const auto aw4a = core::Aw4aPipeline(config).transcode_to_target(page, weblight_bytes);
  table.add_row({"AW4A (ours)", format_bytes(aw4a.result_bytes),
                 fmt((1.0 - static_cast<double>(aw4a.result_bytes) /
                                static_cast<double>(page.transfer_size())) *
                         100.0,
                     1) + "%",
                 fmt(aw4a.quality.qss, 3), fmt(aw4a.quality.qfs, 3),
                 aw4a.met_target ? "no" : "no (target missed)",
                 "quality-maximizing under a byte budget; operator consent"});

  std::cout << table.render(2) << '\n';
  return 0;
}
