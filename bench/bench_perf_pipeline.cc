// Perf-regression bench for the cold-build fast path (PR 3).
//
// Times the three layers the fast path touches, on one rich page with the
// default 4-tier ladder:
//
//   cold build   per-tier fresh LadderCache (the pre-PR build_tiers behavior,
//                reconstructed via the public single-shot API) vs. the shared
//                cross-tier cache, with and without parallel prewarm
//   dense SSIM   integral-image ssim() vs. the retained ssim_reference()
//                at stride 1 and the default stride 4
//   breakdown    prewarm stage vs. solver stage of the shared build
//   encode-once  a full JPEG quality ladder encoded single-shot per rung vs.
//                one prepare() + per-rung encode_prepared() (PR 5), with the
//                rungs checked bit-identical
//   rANS A/B     the same ladder under both entropy backends (PR 8): encode
//                and decode wall time per backend plus the payload-byte
//                reduction at equal SSIM (decoded rasters are checked
//                pixel-identical across backends, so "equal SSIM" is exact,
//                not approximate). Exits nonzero if rANS saves < 5% payload
//                bytes or its ladder decode exceeds 1.5x its ladder encode.
//
// Every timed pair is also checked for equivalence: tier bytes/QSS must be
// identical across build modes, and integral SSIM must match the reference
// to 1e-9 — a perf bench that silently changed answers would be worse than
// a slow one.
//
// Writes machine-readable results (stable schema: name, unit, value) to
// BENCH_pipeline.json — or --json=PATH — so later PRs have a trajectory.
//
//   build/bench/bench_perf_pipeline [--kb=600] [--repeat=3] [--workers=4]
//                                   [--json=BENCH_pipeline.json]
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "core/pipeline.h"
#include "dataset/corpus.h"
#include "imaging/ans.h"
#include "imaging/codec.h"
#include "imaging/codec_detail.h"
#include "imaging/ssim.h"
#include "imaging/synth.h"
#include "util/rng.h"

namespace {

using namespace aw4a;

struct BenchOptions {
  double kb = 600.0;
  int repeat = 3;
  unsigned workers = 4;
  std::string json_path = "BENCH_pipeline.json";
};

struct Entry {
  std::string name;
  std::string unit;
  double value = 0.0;
};

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

/// Best-of-`repeat` wall time of fn(), in milliseconds.
double time_best_ms(int repeat, const std::function<void()>& fn) {
  double best = 0.0;
  for (int r = 0; r < repeat; ++r) {
    const auto start = std::chrono::steady_clock::now();
    fn();
    const double elapsed = seconds_since(start);
    if (r == 0 || elapsed < best) best = elapsed;
  }
  return best * 1000.0;
}

struct TierSummary {
  Bytes bytes = 0;
  double qss = 0.0;
  std::string algorithm;
  bool met_target = false;
};

bool same(const std::vector<TierSummary>& a, const std::vector<TierSummary>& b,
          const char* what) {
  if (a.size() != b.size()) {
    std::fprintf(stderr, "FAIL: %s: tier count %zu vs %zu\n", what, a.size(), b.size());
    return false;
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].bytes != b[i].bytes || a[i].qss != b[i].qss ||
        a[i].algorithm != b[i].algorithm || a[i].met_target != b[i].met_target) {
      std::fprintf(stderr,
                   "FAIL: %s: tier %zu diverged (bytes %llu vs %llu, qss %.17g vs %.17g, "
                   "algorithm '%s' vs '%s')\n",
                   what, i, static_cast<unsigned long long>(a[i].bytes),
                   static_cast<unsigned long long>(b[i].bytes), a[i].qss, b[i].qss,
                   a[i].algorithm.c_str(), b[i].algorithm.c_str());
      return false;
    }
  }
  return true;
}

TierSummary summarize(const core::TranscodeResult& result) {
  return TierSummary{result.result_bytes, result.quality.qss, result.algorithm,
                     result.met_target};
}

void write_json(const std::string& path, const std::vector<Entry>& entries) {
  std::ofstream out(path);
  out << "[\n";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    char value[64];
    std::snprintf(value, sizeof(value), "%.6g", entries[i].value);
    out << "  {\"name\": \"" << entries[i].name << "\", \"unit\": \"" << entries[i].unit
        << "\", \"value\": " << value << "}" << (i + 1 < entries.size() ? "," : "") << "\n";
  }
  out << "]\n";
}

}  // namespace

int main(int argc, char** argv) {
  BenchOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.starts_with("--kb=")) {
      options.kb = std::strtod(arg.substr(5).data(), nullptr);
    } else if (arg.starts_with("--repeat=")) {
      options.repeat = static_cast<int>(std::strtol(arg.substr(9).data(), nullptr, 10));
    } else if (arg.starts_with("--workers=")) {
      options.workers =
          static_cast<unsigned>(std::strtoul(arg.substr(10).data(), nullptr, 10));
    } else if (arg.starts_with("--json=")) {
      options.json_path = std::string(arg.substr(7));
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
      return 2;
    }
  }

  std::printf("# bench_perf_pipeline: %.0f KB rich page, repeat=%d, prewarm workers=%u\n",
              options.kb, options.repeat, options.workers);
  dataset::CorpusGenerator gen(dataset::CorpusOptions{.seed = 1729, .rich = true});
  Rng rng(1729);
  const web::WebPage page = gen.make_page(rng, from_kb(options.kb), gen.global_profile());

  core::DeveloperConfig config;
  config.measure_qfs = false;  // isolate the enumeration/solver cost under test
  const core::Aw4aPipeline pipeline(config);
  const Bytes original = page.transfer_size();

  std::vector<Entry> entries;
  bool ok = true;

  // --- Cold tier-ladder build: per-tier fresh cache (pre-PR behavior) vs.
  // shared cross-tier cache vs. shared + prewarm. ---
  std::vector<TierSummary> baseline, shared, prewarmed;
  const double baseline_ms = time_best_ms(options.repeat, [&] {
    baseline.clear();
    for (const double reduction : config.tier_reductions) {
      const Bytes target = static_cast<Bytes>(static_cast<double>(original) / reduction);
      baseline.push_back(summarize(pipeline.transcode_to_target(page, target)));
    }
  });
  const double shared_ms = time_best_ms(options.repeat, [&] {
    shared.clear();
    for (const core::Tier& tier : pipeline.build_tiers(page)) {
      shared.push_back(summarize(tier.result));
    }
  });
  core::DeveloperConfig prewarm_config = config;
  prewarm_config.prewarm_workers = static_cast<int>(options.workers);
  const core::Aw4aPipeline prewarm_pipeline(prewarm_config);
  const double prewarm_build_ms = time_best_ms(options.repeat, [&] {
    prewarmed.clear();
    for (const core::Tier& tier : prewarm_pipeline.build_tiers(page)) {
      prewarmed.push_back(summarize(tier.result));
    }
  });
  ok = same(baseline, shared, "shared-cache build vs per-tier baseline") && ok;
  ok = same(baseline, prewarmed, "prewarmed build_tiers vs per-tier baseline") && ok;

  // Stage breakdown of the shared build: prewarm (all enumeration) vs. the
  // serial solver passes over the warm cache.
  double prewarm_stage_ms = 0.0, solver_stage_ms = 0.0;
  for (int r = 0; r < options.repeat; ++r) {
    core::LadderCache ladders(pipeline.ladder_options());
    auto start = std::chrono::steady_clock::now();
    ladders.prewarm(page, options.workers);
    const double warm = seconds_since(start) * 1000.0;
    start = std::chrono::steady_clock::now();
    for (const double reduction : config.tier_reductions) {
      const Bytes target = static_cast<Bytes>(static_cast<double>(original) / reduction);
      (void)pipeline.transcode_to_target(page, target, ladders);
    }
    const double solve = seconds_since(start) * 1000.0;
    if (r == 0 || warm + solve < prewarm_stage_ms + solver_stage_ms) {
      prewarm_stage_ms = warm;
      solver_stage_ms = solve;
    }
  }

  // Headline: the default build_tiers path (shared cache, prewarm off) vs. the
  // pre-PR per-tier rebuild. The prewarmed time is reported alongside — it wins
  // on multi-core origins but regresses on single-core boxes, where the extra
  // threads only add scheduling overhead, so it is not the headline.
  const double build_speedup = shared_ms == 0.0 ? 0.0 : baseline_ms / shared_ms;
  entries.push_back({"cold_build_tiers_per_tier_cache", "ms", baseline_ms});
  entries.push_back({"cold_build_tiers_shared_cache", "ms", shared_ms});
  entries.push_back({"cold_build_tiers_prewarmed", "ms", prewarm_build_ms});
  entries.push_back({"cold_build_speedup", "x", build_speedup});
  entries.push_back({"cold_build_prewarm_stage", "ms", prewarm_stage_ms});
  entries.push_back({"cold_build_solver_stage", "ms", solver_stage_ms});

  // --- SSIM: integral-image vs. the retained reference, dense and strided,
  // on a JPEG-roundtripped photo (realistic correlated distortion). ---
  Rng img_rng(42);
  const imaging::Raster photo = imaging::synth_image(img_rng, imaging::ImageClass::kPhoto,
                                                     448, 336);
  const imaging::Encoded degraded = imaging::jpeg_encode(photo, 40);
  const imaging::PlaneF luma_a = imaging::luma_plane(photo);
  const imaging::PlaneF luma_b = imaging::luma_plane(degraded.decoded);

  const imaging::SsimOptions dense{8, 1};
  const imaging::SsimOptions strided{8, 4};
  double dense_integral = 0.0, dense_reference = 0.0;
  double strided_integral = 0.0, strided_reference = 0.0;
  const double ssim_dense_ms = time_best_ms(options.repeat, [&] {
    dense_integral = imaging::ssim(luma_a, luma_b, dense);
  });
  const double ssim_dense_ref_ms = time_best_ms(options.repeat, [&] {
    dense_reference = imaging::ssim_reference(luma_a, luma_b, dense);
  });
  const double ssim_strided_ms = time_best_ms(options.repeat, [&] {
    strided_integral = imaging::ssim(luma_a, luma_b, strided);
  });
  const double ssim_strided_ref_ms = time_best_ms(options.repeat, [&] {
    strided_reference = imaging::ssim_reference(luma_a, luma_b, strided);
  });
  const double msssim_ms = time_best_ms(options.repeat, [&] {
    (void)imaging::ms_ssim(luma_a, luma_b);
  });
  if (std::fabs(dense_integral - dense_reference) > 1e-9 ||
      std::fabs(strided_integral - strided_reference) > 1e-9) {
    std::fprintf(stderr, "FAIL: integral SSIM diverged from reference (dense %.17g vs %.17g, "
                 "strided %.17g vs %.17g)\n",
                 dense_integral, dense_reference, strided_integral, strided_reference);
    ok = false;
  }

  const double dense_speedup = ssim_dense_ms == 0.0 ? 0.0 : ssim_dense_ref_ms / ssim_dense_ms;
  entries.push_back({"ssim_dense_integral", "ms", ssim_dense_ms});
  entries.push_back({"ssim_dense_reference", "ms", ssim_dense_ref_ms});
  entries.push_back({"ssim_dense_speedup", "x", dense_speedup});
  entries.push_back({"ssim_strided_integral", "ms", ssim_strided_ms});
  entries.push_back({"ssim_strided_reference", "ms", ssim_strided_ref_ms});
  entries.push_back({"msssim_default", "ms", msssim_ms});

  // --- Encode-once quality ladder: N single-shot encodes vs. one prepare()
  // plus N encode_prepared() rungs, on the same photo. The rungs must be
  // bit-identical (bytes and every decoded pixel) — the whole design rests
  // on quality only touching the post-DCT half of the pipeline. ---
  const std::vector<int> ladder_steps = {92, 85, 75, 65, 55, 45, 35};
  const imaging::Codec& jpeg = imaging::codec_for(imaging::ImageFormat::kJpeg);
  std::vector<imaging::Encoded> single_shot, factored;
  const double ladder_single_ms = time_best_ms(options.repeat, [&] {
    single_shot.clear();
    for (const int q : ladder_steps) single_shot.push_back(jpeg.encode(photo, q));
  });
  const double ladder_factored_ms = time_best_ms(options.repeat, [&] {
    factored.clear();
    const imaging::Codec::PreparedPtr prep = jpeg.prepare(photo);
    for (const int q : ladder_steps) factored.push_back(jpeg.encode_prepared(*prep, q));
  });
  for (std::size_t i = 0; i < ladder_steps.size(); ++i) {
    if (single_shot[i].bytes != factored[i].bytes ||
        single_shot[i].decoded.pixels() != factored[i].decoded.pixels()) {
      std::fprintf(stderr,
                   "FAIL: factored encode diverged from single-shot at q=%d "
                   "(bytes %llu vs %llu)\n",
                   ladder_steps[i], static_cast<unsigned long long>(single_shot[i].bytes),
                   static_cast<unsigned long long>(factored[i].bytes));
      ok = false;
    }
  }
  const double factored_speedup =
      ladder_factored_ms == 0.0 ? 0.0 : ladder_single_ms / ladder_factored_ms;
  entries.push_back({"encode_ladder_single_shot", "ms", ladder_single_ms});
  entries.push_back({"encode_ladder_factored", "ms", ladder_factored_ms});
  entries.push_back({"dct_factored_speedup", "x", factored_speedup});

  // --- rANS entropy backend A/B: the same factored ladder with a real
  // interleaved-rANS payload, plus the decode side of both backends. The
  // Huffman backend has no bitstream (its payload is an analytic cost), so
  // its "decode" is the dequantize+IDCT reconstruction on pre-parsed levels;
  // the rANS decode additionally entropy-parses its payload blob. ---
  std::vector<imaging::Encoded> rans_ladder;
  const double ladder_rans_ms = time_best_ms(options.repeat, [&] {
    rans_ladder.clear();
    const imaging::Codec::PreparedPtr prep = jpeg.prepare(photo);
    for (const int q : ladder_steps) {
      rans_ladder.push_back(
          jpeg.encode_prepared(*prep, q, imaging::EntropyBackend::kRans));
    }
  });

  // Equal SSIM, proven not measured: entropy coding is lossless, so every
  // rung must reconstruct the exact pixels of its Huffman twin.
  double huff_payload = 0.0, rans_payload = 0.0;
  for (std::size_t i = 0; i < ladder_steps.size(); ++i) {
    if (rans_ladder[i].decoded.pixels() != factored[i].decoded.pixels()) {
      std::fprintf(stderr, "FAIL: rANS rung q=%d decoded differently from Huffman\n",
                   ladder_steps[i]);
      ok = false;
    }
    huff_payload += static_cast<double>(factored[i].payload_bytes());
    rans_payload += static_cast<double>(rans_ladder[i].payload_bytes());
  }
  const double rans_reduction =
      huff_payload == 0.0 ? 0.0 : 1.0 - rans_payload / huff_payload;

  // Decode inputs prepared outside the timers: levels for the Huffman path,
  // payload blobs for the rANS path.
  const imaging::detail::LossyParams jpeg_params =
      imaging::detail::lossy_params_for(imaging::ImageFormat::kJpeg);
  const imaging::detail::PreparedLossy prep_lossy =
      imaging::detail::prepare_lossy(photo, jpeg_params);
  std::vector<imaging::detail::DecodedLossy> ladder_levels;
  for (const int q : ladder_steps) {
    ladder_levels.push_back(imaging::detail::quantize_levels(prep_lossy, q, jpeg_params));
  }
  const double decode_huffman_ms = time_best_ms(options.repeat, [&] {
    for (const auto& levels : ladder_levels) {
      (void)imaging::detail::reconstruct_lossy(levels);
    }
  });
  const double decode_rans_ms = time_best_ms(options.repeat, [&] {
    for (const imaging::Encoded& enc : rans_ladder) {
      (void)imaging::lossy_decode(enc.payload);
    }
  });
  // Decode equivalence: the blob round-trips to the encoder's exact levels
  // and pixels.
  for (std::size_t i = 0; i < ladder_steps.size(); ++i) {
    const imaging::detail::DecodedLossy parsed = imaging::detail::rans_parse_payload(
        rans_ladder[i].payload.data(), rans_ladder[i].payload.size());
    if (parsed.luma != ladder_levels[i].luma || parsed.cb != ladder_levels[i].cb ||
        parsed.cr != ladder_levels[i].cr) {
      std::fprintf(stderr, "FAIL: rANS payload q=%d did not round-trip its levels\n",
                   ladder_steps[i]);
      ok = false;
    }
    if (imaging::lossy_decode(rans_ladder[i].payload).pixels() !=
        rans_ladder[i].decoded.pixels()) {
      std::fprintf(stderr, "FAIL: lossy_decode q=%d diverged from Encoded.decoded\n",
                   ladder_steps[i]);
      ok = false;
    }
  }
  if (rans_reduction < 0.05) {
    std::fprintf(stderr, "FAIL: rANS payload reduction %.1f%% below the 5%% floor\n",
                 rans_reduction * 100.0);
    ok = false;
  }
  if (decode_rans_ms > 1.5 * ladder_rans_ms) {
    std::fprintf(stderr, "FAIL: rANS ladder decode %.2fms exceeds 1.5x encode %.2fms\n",
                 decode_rans_ms, ladder_rans_ms);
    ok = false;
  }
  entries.push_back({"encode_ladder_rans", "ms", ladder_rans_ms});
  entries.push_back({"decode_ladder_huffman", "ms", decode_huffman_ms});
  entries.push_back({"decode_ladder_rans", "ms", decode_rans_ms});
  entries.push_back({"rans_payload_reduction", "ratio", rans_reduction});

  // --- SIMD dispatch A/B (PR 10): the same ladder decode forced scalar vs
  // forced AVX2, and the division-free encoder hot loop vs its pinned
  // division/modulo reference. Both A/Bs double as equivalence checks —
  // pixels must be bit-identical across modes, encoder output byte-identical
  // across implementations. On hosts without AVX2 both decode legs run the
  // scalar path and the speedup honestly reports ~1.0. ---
  double decoded_bytes = 0.0;
  for (const imaging::Encoded& enc : rans_ladder) {
    decoded_bytes += static_cast<double>(enc.decoded.width()) * enc.decoded.height() *
                     sizeof(imaging::Pixel);
  }
  const double rans_decode_mb_per_s =
      decode_rans_ms == 0.0 ? 0.0 : decoded_bytes / 1.0e6 / (decode_rans_ms / 1.0e3);
  const auto time_ladder_decode = [&](imaging::ans::SimdMode mode) {
    imaging::ans::set_simd_mode(mode);
    const double ms = time_best_ms(options.repeat, [&] {
      for (const imaging::Encoded& enc : rans_ladder) {
        (void)imaging::lossy_decode(enc.payload);
      }
    });
    imaging::ans::set_simd_mode(imaging::ans::SimdMode::kAuto);
    return ms;
  };
  const double decode_scalar_ms = time_ladder_decode(imaging::ans::SimdMode::kScalar);
  const double decode_simd_ms = time_ladder_decode(imaging::ans::SimdMode::kSimd);
  const double rans_decode_speedup =
      decode_simd_ms == 0.0 ? 0.0 : decode_scalar_ms / decode_simd_ms;
  for (const imaging::Encoded& enc : rans_ladder) {
    imaging::ans::set_simd_mode(imaging::ans::SimdMode::kScalar);
    const imaging::Raster scalar_px = imaging::lossy_decode(enc.payload);
    imaging::ans::set_simd_mode(imaging::ans::SimdMode::kSimd);
    const imaging::Raster simd_px = imaging::lossy_decode(enc.payload);
    imaging::ans::set_simd_mode(imaging::ans::SimdMode::kAuto);
    if (scalar_px.pixels() != simd_px.pixels()) {
      std::fprintf(stderr, "FAIL: scalar and SIMD rANS decodes diverged\n");
      ok = false;
    }
  }

  // Encoder A/B over a codec-shaped symbol stream: two contexts (a small
  // DC-like and a dense AC-like alphabet), skewed counts, tens of renorms
  // per lane — the same work mix encode_prepared feeds the coder, isolated
  // from DCT/quantize time.
  {
    Rng ab_rng(4242);
    std::vector<std::uint64_t> dc_counts(16, 0), ac_counts(256, 0);
    std::vector<imaging::ans::SymbolRef> ab_ops;
    for (int i = 0; i < 200000; ++i) {
      const bool dc = i % 9 == 0;  // ~1 DC symbol per block's worth of ACs
      int s = 0;
      const int cap = dc ? 15 : 255;
      while (s < cap && ab_rng.uniform(0.0, 1.0) < 0.6) ++s;
      (dc ? dc_counts : ac_counts)[static_cast<std::size_t>(s)]++;
      ab_ops.push_back({static_cast<std::uint16_t>(dc ? 0 : 1),
                        static_cast<std::uint16_t>(s)});
    }
    const std::vector<imaging::ans::FreqTable> ab_tables = {
        imaging::ans::build_table(dc_counts.data(), 16),
        imaging::ans::build_table(ac_counts.data(), 256)};
    // Symbols the escape sweep folded out of a table ride its ESCAPE entry,
    // exactly as the codec's collector does.
    for (imaging::ans::SymbolRef& op : ab_ops) {
      if (!ab_tables[op.table].has(op.symbol)) {
        op.symbol = imaging::ans::kEscapeSymbol;
      }
    }
    imaging::ans::EncodedStreams fast, reference;
    const double encode_fast_ms = time_best_ms(options.repeat, [&] {
      fast = imaging::ans::encode_interleaved(ab_ops, ab_tables);
    });
    const double encode_ref_ms = time_best_ms(options.repeat, [&] {
      reference = imaging::ans::encode_interleaved_reference(ab_ops, ab_tables);
    });
    const double rans_encode_speedup =
        encode_fast_ms == 0.0 ? 0.0 : encode_ref_ms / encode_fast_ms;
    if (fast.stream != reference.stream || fast.states != reference.states) {
      std::fprintf(stderr,
                   "FAIL: reciprocal encoder output differs from the reference\n");
      ok = false;
    }
    entries.push_back({"rans_decode_mb_per_s", "MB/s", rans_decode_mb_per_s});
    entries.push_back({"rans_decode_speedup", "x", rans_decode_speedup});
    entries.push_back({"rans_encode_speedup", "x", rans_encode_speedup});
  }

  std::printf("\n%-34s %10s %10s\n", "benchmark", "value", "unit");
  for (const Entry& e : entries) {
    std::printf("%-34s %10.3f %10s\n", e.name.c_str(), e.value, e.unit.c_str());
  }
  std::printf("\ncold build: %.1fx faster; dense SSIM: %.1fx faster; "
              "rANS payload: %.1f%% smaller at equal SSIM\n",
              build_speedup, dense_speedup, rans_reduction * 100.0);

  write_json(options.json_path, entries);
  std::printf("wrote %s\n", options.json_path.c_str());

  if (!ok) {
    std::fprintf(stderr, "bench_perf_pipeline: EQUIVALENCE FAILURE (see above)\n");
    return 1;
  }
  return 0;
}
