// Microbenchmarks: solver scaling — RBR's near-linear behaviour vs Grid
// Search's exponential blowup in the image count (paper §7's complexity
// claims: RBR O(n*v), Grid Search O(v^n)).
#include <benchmark/benchmark.h>

#include "core/grid_search.h"
#include "core/rbr.h"
#include "dataset/corpus.h"
#include "core/knapsack.h"
#include "js/muzeel.h"
#include "net/http.h"
#include "util/rng.h"

namespace {

using namespace aw4a;

// Build a rich page with approximately `n` images (retry a few seeds).
web::WebPage page_with_images(int n) {
  dataset::CorpusGenerator gen(dataset::CorpusOptions{.seed = 77, .rich = true});
  Rng rng(static_cast<std::uint64_t>(n) * 131 + 7);
  web::WebPage best;
  std::size_t best_gap = SIZE_MAX;
  for (int attempt = 0; attempt < 30; ++attempt) {
    web::WebPage page =
        gen.make_page(rng, from_mb(0.4 + 0.12 * n), gen.global_profile());
    const std::size_t images = core::rich_images(page).size();
    const std::size_t gap = images > static_cast<std::size_t>(n)
                                ? images - static_cast<std::size_t>(n)
                                : static_cast<std::size_t>(n) - images;
    if (gap < best_gap) {
      best_gap = gap;
      best = std::move(page);
      if (gap == 0) break;
    }
  }
  return best;
}

void BM_Rbr(benchmark::State& state) {
  const web::WebPage page = page_with_images(static_cast<int>(state.range(0)));
  core::LadderCache ladders;
  const Bytes target = page.transfer_size() * 75 / 100;
  // Pre-warm ladders: the steady-state serving cost is the search itself.
  {
    web::ServedPage warm = web::serve_original(page);
    core::rank_based_reduce(warm, target, ladders);
  }
  for (auto _ : state) {
    web::ServedPage served = web::serve_original(page);
    benchmark::DoNotOptimize(core::rank_based_reduce(served, target, ladders).bytes_after);
  }
  state.counters["images"] = static_cast<double>(core::rich_images(page).size());
}
BENCHMARK(BM_Rbr)->Arg(4)->Arg(8)->Arg(16)->Unit(benchmark::kMillisecond);

void BM_GridSearch(benchmark::State& state) {
  const web::WebPage page = page_with_images(static_cast<int>(state.range(0)));
  core::LadderCache ladders;
  const Bytes target = page.transfer_size() * 75 / 100;
  core::GridSearchOptions options;
  options.timeout_seconds = 3.0;
  {
    web::ServedPage warm = web::serve_original(page);
    core::grid_search(warm, target, ladders, options);
  }
  std::uint64_t nodes = 0;
  for (auto _ : state) {
    web::ServedPage served = web::serve_original(page);
    const auto outcome = core::grid_search(served, target, ladders, options);
    nodes = outcome.nodes_explored;
    benchmark::DoNotOptimize(outcome.bytes_after);
  }
  state.counters["images"] = static_cast<double>(core::rich_images(page).size());
  state.counters["nodes"] = static_cast<double>(nodes);
}
BENCHMARK(BM_GridSearch)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

void BM_Knapsack(benchmark::State& state) {
  const web::WebPage page = page_with_images(static_cast<int>(state.range(0)));
  core::LadderCache ladders;
  const Bytes target = page.transfer_size() * 75 / 100;
  {
    web::ServedPage warm = web::serve_original(page);
    core::knapsack_optimize(warm, target, ladders);
  }
  for (auto _ : state) {
    web::ServedPage served = web::serve_original(page);
    benchmark::DoNotOptimize(core::knapsack_optimize(served, target, ladders).bytes_after);
  }
  state.counters["images"] = static_cast<double>(core::rich_images(page).size());
}
BENCHMARK(BM_Knapsack)->Arg(8)->Arg(16)->Arg(32)->Unit(benchmark::kMillisecond);

void BM_HttpParseRequest(benchmark::State& state) {
  net::HttpRequest request;
  request.path = "/index.html";
  request.headers = {{"Host", "example.com"},
                     {"Save-Data", "on"},
                     {"X-Geo-Country", "PK"},
                     {"Accept", "text/html"},
                     {"User-Agent", "aw4a-bench/1.0"}};
  const std::string wire = net::serialize(request);
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::parse_request(wire)->headers.size());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * wire.size()));
}
BENCHMARK(BM_HttpParseRequest);

void BM_Muzeel(benchmark::State& state) {
  Rng rng(5);
  js::ScriptSynthOptions options;
  options.target_bytes = static_cast<Bytes>(state.range(0)) * kKB;
  const js::Script script = js::synth_script(rng, options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(js::muzeel_eliminate(script).removed_bytes);
  }
}
BENCHMARK(BM_Muzeel)->Arg(50)->Arg(200);

}  // namespace

BENCHMARK_MAIN();
