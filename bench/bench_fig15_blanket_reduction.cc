// Fig. 15: blanket policy — reduce *every* image to the 0.9-SSIM rung (no
// ranking, no early stop) and count URLs meeting 1/PAW per country.
#include <iostream>

#include "analysis/report.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace aw4a;
  analysis::CountryReductionOptions options;
  options.pages_per_country = argc > 1 ? std::atoi(argv[1]) : 16;
  analysis::print_header(
      std::cout, "Fig. 15 — blanket reduction to SSIM 0.9",
      "blanket image reduction gives a mean 23% byte cut at mean QSS 0.94; "
      "fewer URLs meet 1/PAW than with targeted RBR (Fig. 10)",
      std::to_string(options.pages_per_country) + " rich pages per country, DVLU plan");

  const auto result = analysis::blanket_reduction(options);
  TextTable table({"country", "PAW", "%URLs meeting 1/PAW"});
  for (const auto& row : result.per_country) {
    table.add_row(
        {std::string(row.country->name), fmt(row.paw, 2), fmt(row.pct_meeting_qt09, 1)});
  }
  std::cout << table.render(2) << '\n';
  analysis::print_compare(std::cout, "mean bytes reduction", 23.0,
                          result.mean_bytes_reduction * 100.0, "%");
  analysis::print_compare(std::cout, "mean QSS", 0.94, result.mean_qss);
  return 0;
}
