// Fig. 2b: CDFs of country-average page size / network transfer size,
// developing vs developed, with and without caching — plus the §2.2 device
// cache experiment (Nexus 5 vs Nokia 1).
#include <iostream>

#include "analysis/report.h"
#include "util/stats.h"

int main(int argc, char** argv) {
  using namespace aw4a;
  analysis::AnalysisOptions options;
  if (argc > 1) options.pages_per_country = std::atoi(argv[1]);
  analysis::print_header(
      std::cout, "Fig. 2b — page sizes across 99 countries",
      "mean 2.83 MB (sd 0.55); developing 2.87 vs developed 2.64 MB; caching "
      "cuts the global mean 2.47 -> 1.02 MB (58.7%); Nexus 5 -60.9%, Nokia 1 -21.4%",
      "synthetic corpora, " + std::to_string(options.pages_per_country) +
          " pages/country, table-pinned means");

  const auto stats = analysis::measure_countries(options);
  std::vector<double> developing;
  std::vector<double> developed;
  std::vector<double> all;
  std::vector<double> developing_cached;
  std::vector<double> developed_cached;
  std::vector<double> all_cached;
  for (const auto& s : stats) {
    (s.country->developing ? developing : developed).push_back(s.mean_page_mb);
    (s.country->developing ? developing_cached : developed_cached).push_back(s.mean_cached_mb);
    all.push_back(s.mean_page_mb);
    all_cached.push_back(s.mean_cached_mb);
  }
  analysis::print_cdf(std::cout, "developing_mb", developing);
  analysis::print_cdf(std::cout, "developed_mb", developed);
  analysis::print_cdf(std::cout, "all_mb", all);
  analysis::print_cdf(std::cout, "developing_cached_mb", developing_cached);
  analysis::print_cdf(std::cout, "developed_cached_mb", developed_cached);
  analysis::print_cdf(std::cout, "all_cached_mb", all_cached);

  analysis::print_compare(std::cout, "mean page size (all)", 2.83, mean(all), " MB");
  analysis::print_compare(std::cout, "sd across countries", 0.55, stdev(all), " MB");
  analysis::print_compare(std::cout, "mean (developing)", 2.87, mean(developing), " MB");
  analysis::print_compare(std::cout, "mean (developed)", 2.64, mean(developed), " MB");

  const auto global = analysis::measure_global(options);
  analysis::print_compare(std::cout, "global top-1000 mean", 2.47, global.mean_page_mb, " MB");
  analysis::print_compare(std::cout, "global cached mean", 1.02, global.mean_cached_mb, " MB");
  analysis::print_compare(std::cout, "caching reduction", 58.7,
                          (1.0 - global.mean_cached_mb / global.mean_page_mb) * 100.0, "%");

  // Device cache experiment (25-site rotation).
  dataset::CorpusGenerator gen(dataset::CorpusOptions{.seed = options.seed});
  const auto pages = gen.global_pages(25);
  std::vector<std::vector<net::CacheItem>> item_pages;
  for (const auto& page : pages) {
    std::vector<net::CacheItem> items;
    for (const auto& object : page.objects) items.push_back(web::to_cache_item(object));
    item_pages.push_back(std::move(items));
  }
  const net::VisitSchedule schedule{};
  analysis::print_compare(
      std::cout, "Nexus 5 cache saving", 60.9,
      net::simulate_device_cache(item_pages, schedule, net::nexus5()) * 100.0, "%");
  analysis::print_compare(
      std::cout, "Nokia 1 cache saving", 21.4,
      net::simulate_device_cache(item_pages, schedule, net::nokia1()) * 100.0, "%");
  return 0;
}
