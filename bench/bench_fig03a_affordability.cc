// Fig. 3a + Fig. 13: % of countries not meeting the Web-access target as a
// function of the reduction factor applied to every country's mean page size.
#include <iostream>

#include "analysis/report.h"
#include "util/table.h"

int main() {
  using namespace aw4a;
  analysis::print_header(
      std::cout, "Fig. 3a / Fig. 13 — affordability-size trade-off",
      "1.5x reduction lets 12.1-14.1% of countries newly meet the target; "
      "3x brings 27.3-31.3% within it",
      "PAW/factor > 1 counted over the 96 priced countries, all plans, +-cache");

  TextTable table({"factor", "DO", "DVLU", "DVHU", "DO(cache)", "DVLU(cache)", "DVHU(cache)"});
  for (double factor = 1.0; factor <= 10.0 + 1e-9; factor += 0.5) {
    std::vector<std::string> row{fmt(factor, 1) + "x"};
    for (bool cached : {false, true}) {
      for (net::PlanType plan : net::kAllPlans) {
        row.push_back(fmt(analysis::pct_countries_failing(plan, cached, factor), 1) + "%");
      }
    }
    // Reorder: the loop above appends non-cached then cached triplets already
    // in plan order, which matches the header.
    table.add_row(std::move(row));
  }
  std::cout << table.render(2) << '\n';

  for (net::PlanType plan : {net::PlanType::kDataOnly, net::PlanType::kDataVoiceHighUsage}) {
    const double newly_15 = analysis::pct_countries_failing(plan, false, 1.0) -
                            analysis::pct_countries_failing(plan, false, 1.5);
    const double newly_30 = analysis::pct_countries_failing(plan, false, 1.0) -
                            analysis::pct_countries_failing(plan, false, 3.0);
    analysis::print_compare(std::cout,
                            std::string("newly met at 1.5x (") + net::plan_code(plan) + ")",
                            13.1, newly_15, "%");
    analysis::print_compare(std::cout,
                            std::string("newly met at 3x (") + net::plan_code(plan) + ")",
                            29.3, newly_30, "%");
  }
  return 0;
}
