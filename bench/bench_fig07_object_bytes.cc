// Fig. 7: average MB contributed per page by JS, CSS, fonts and images, for
// non-cached and cached pages, with 95% confidence intervals.
#include <iostream>

#include "analysis/report.h"
#include "util/stats.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace aw4a;
  analysis::AnalysisOptions options;
  if (argc > 1) options.pages_per_country = std::atoi(argv[1]);
  analysis::print_header(
      std::cout, "Fig. 7 — average bytes per object type",
      "images and JS dominate page bytes (images ~1.2 MB, JS ~0.9 MB per page); "
      "fonts and CSS are small; caching compresses all bars",
      "mean over all country corpora with 95% CIs");

  const auto stats = analysis::measure_countries(options);
  const web::ObjectType types[] = {web::ObjectType::kJs, web::ObjectType::kCss,
                                   web::ObjectType::kFont, web::ObjectType::kImage};
  TextTable table({"type", "non-cached MB", "ci95", "cached MB", "ci95"});
  std::vector<std::string> labels;
  std::vector<double> cold_means;
  for (web::ObjectType t : types) {
    std::vector<double> cold;
    std::vector<double> cached;
    for (const auto& s : stats) {
      cold.push_back(s.mean_type_mb[static_cast<std::size_t>(t)]);
      cached.push_back(s.mean_type_cached_mb[static_cast<std::size_t>(t)]);
    }
    table.add_row({to_string(t), fmt(mean(cold), 3), "+-" + fmt(ci95_halfwidth(cold), 3),
                   fmt(mean(cached), 3), "+-" + fmt(ci95_halfwidth(cached), 3)});
    labels.push_back(to_string(t));
    cold_means.push_back(mean(cold));
  }
  std::cout << table.render(2) << '\n';
  std::cout << ascii_bars(labels, cold_means) << '\n';
  std::cout << "paper shape: image > js >> font > css; both big bars shrink "
               "under caching while remaining dominant\n";
  return 0;
}
