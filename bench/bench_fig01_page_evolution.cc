// Fig. 1: evolution of landing-page sizes (median + quartiles), mobile and
// desktop, 2011-2023, from the HTTP-Archive-like growth model.
#include <iostream>

#include "analysis/report.h"
#include "dataset/httparchive.h"
#include "util/table.h"

int main() {
  using namespace aw4a;
  analysis::print_header(
      std::cout, "Fig. 1 — page weight evolution",
      "median mobile page grew 145 KB (2011) -> 2007 KB (2023), a 13.8x decade; "
      "1569 KB in Jan 2018 (+27.9% to Jan 2023)",
      "logistic growth model fitted to the paper's three quoted anchors");

  TextTable table({"year", "mobile p25", "mobile median", "mobile p75", "desktop median"});
  const auto mobile = dataset::mobile_page_weight_series();
  const auto desktop = dataset::desktop_page_weight_series();
  for (std::size_t i = 0; i < mobile.size(); i += 4) {  // yearly rows
    table.add_row({fmt(mobile[i].year, 0), fmt(mobile[i].p25_kb, 0) + " KB",
                   fmt(mobile[i].median_kb, 0) + " KB", fmt(mobile[i].p75_kb, 0) + " KB",
                   fmt(desktop[i].median_kb, 0) + " KB"});
  }
  std::cout << table.render(2) << '\n';

  analysis::print_compare(std::cout, "mobile median 2011", 145,
                          dataset::mobile_median_kb(2011.0), " KB");
  analysis::print_compare(std::cout, "mobile median Jan 2018", 1569,
                          dataset::mobile_median_kb(2018.0), " KB");
  analysis::print_compare(std::cout, "mobile median Jan 2023", 2007,
                          dataset::mobile_median_kb(2023.0), " KB");
  analysis::print_compare(std::cout, "decade growth factor", 13.8,
                          dataset::mobile_median_kb(2021.0) / dataset::mobile_median_kb(2011.0));
  return 0;
}
