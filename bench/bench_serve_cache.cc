// Serving-path benchmark: closed-loop load over a multi-site origin, with
// Zipf(1.0) site popularity, comparing three configurations of the tier
// cache subsystem:
//
//   cache+single-flight   the production configuration
//   cache, no collapsing  concurrent misses all build (duplicate work)
//   no cache              every data-saving request builds its ladder
//
// Reported per mode: throughput, p50/p99 request latency (measured around
// handle(), bench-side), cache hit rate, ladder builds, and duplicate
// builds — the last is the single-flight story in one number: 0 with it on,
// measurably > 0 with it off under a cold-start herd.
//
// Writes machine-readable results (same stable schema as the pipeline
// bench: name, unit, value) to BENCH_serving.json — or --json=PATH — so
// serving-path regressions show up as a trajectory across PRs.
//
//   build/bench/bench_serve_cache [--sites=50] [--threads=8] [--seconds=4]
//                                 [--zipf=1.0] [--json=BENCH_serving.json]
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "dataset/corpus.h"
#include "serving/origin.h"
#include "util/rng.h"

namespace {

using namespace aw4a;

struct BenchOptions {
  std::size_t sites = 50;
  std::size_t threads = 8;
  double seconds = 4.0;
  double zipf_s = 1.0;
  std::string json_path = "BENCH_serving.json";
};

struct Entry {
  std::string name;
  std::string unit;
  double value = 0.0;
};

void write_json(const std::string& path, const std::vector<Entry>& entries) {
  std::ofstream out(path);
  out << "[\n";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    char value[64];
    std::snprintf(value, sizeof(value), "%.6g", entries[i].value);
    out << "  {\"name\": \"" << entries[i].name << "\", \"unit\": \"" << entries[i].unit
        << "\", \"value\": " << value << "}" << (i + 1 < entries.size() ? "," : "") << "\n";
  }
  out << "]\n";
}

struct ModeResult {
  std::string name;
  std::uint64_t requests = 0;
  double elapsed_seconds = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double hit_rate = 0.0;
  std::uint64_t builds = 0;
  std::uint64_t duplicate_builds = 0;

  double throughput() const {
    return elapsed_seconds == 0.0 ? 0.0 : static_cast<double>(requests) / elapsed_seconds;
  }
};

std::vector<serving::OriginSite> make_corpus(const BenchOptions& options) {
  dataset::CorpusGenerator gen(dataset::CorpusOptions{.seed = 1729, .rich = true});
  Rng rng(1729);
  core::DeveloperConfig config;
  config.tier_reductions = {2.0};
  config.min_image_ssim = 0.8;
  config.measure_qfs = false;
  std::vector<serving::OriginSite> sites;
  sites.reserve(options.sites);
  for (std::size_t i = 0; i < options.sites; ++i) {
    const Bytes target = from_kb(rng.uniform(150.0, 400.0));
    sites.push_back(serving::OriginSite{
        "site-" + std::to_string(i) + ".example",
        gen.make_page(rng, target, gen.global_profile()),
        config,
        net::PlanType::kDataVoiceLowUsage,
    });
  }
  return sites;
}

net::HttpRequest make_request(const std::string& host, int variant) {
  net::HttpRequest request;
  request.headers.push_back({"Host", host});
  request.headers.push_back({"Save-Data", "on"});
  switch (variant % 3) {
    case 0: request.headers.push_back({"X-Geo-Country", "ET"}); break;
    case 1: request.headers.push_back({"X-Geo-Country", "PK"}); break;
    default: request.headers.push_back({"AW4A-Savings", "50"}); break;
  }
  return request;
}

ModeResult run_mode(const std::string& name, const std::vector<serving::OriginSite>& sites,
                    serving::OriginOptions origin_options, const BenchOptions& options) {
  const serving::OriginServer origin(sites, std::move(origin_options));
  std::atomic<bool> go{false};
  std::vector<std::vector<double>> latencies_ms(options.threads);
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < options.threads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng = Rng(42).fork(t);
      auto& samples = latencies_ms[t];
      samples.reserve(4096);
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      const auto deadline = std::chrono::steady_clock::now() +
                            std::chrono::duration<double>(options.seconds);
      int variant = static_cast<int>(t);
      while (std::chrono::steady_clock::now() < deadline) {
        const std::size_t rank = rng.zipf(sites.size(), options.zipf_s);
        const auto started = std::chrono::steady_clock::now();
        const auto response = origin.handle(make_request(sites[rank - 1].host, variant++));
        const auto finished = std::chrono::steady_clock::now();
        if (response.status != 200) std::abort();  // the bench serves no errors
        samples.push_back(std::chrono::duration<double, std::milli>(finished - started).count());
      }
    });
  }
  const auto bench_start = std::chrono::steady_clock::now();
  go.store(true, std::memory_order_release);
  for (auto& thread : threads) thread.join();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - bench_start).count();

  std::vector<double> all;
  for (const auto& samples : latencies_ms) all.insert(all.end(), samples.begin(), samples.end());
  std::sort(all.begin(), all.end());
  const auto pct = [&](double q) {
    if (all.empty()) return 0.0;
    const auto index = static_cast<std::size_t>(q * static_cast<double>(all.size() - 1));
    return all[index];
  };

  ModeResult result;
  result.name = name;
  result.requests = all.size();
  result.elapsed_seconds = elapsed;
  result.p50_ms = pct(0.50);
  result.p99_ms = pct(0.99);
  result.hit_rate = origin.cache_stats().hit_rate();
  const serving::MetricsSnapshot metrics = origin.metrics();
  result.builds = metrics.builds_started;
  result.duplicate_builds = metrics.duplicate_builds;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  BenchOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    const auto value = [&](std::string_view prefix) -> const char* {
      return arg.substr(prefix.size()).data();
    };
    if (arg.starts_with("--sites=")) {
      options.sites = static_cast<std::size_t>(std::strtoul(value("--sites="), nullptr, 10));
    } else if (arg.starts_with("--threads=")) {
      options.threads = static_cast<std::size_t>(std::strtoul(value("--threads="), nullptr, 10));
    } else if (arg.starts_with("--seconds=")) {
      options.seconds = std::strtod(value("--seconds="), nullptr);
    } else if (arg.starts_with("--zipf=")) {
      options.zipf_s = std::strtod(value("--zipf="), nullptr);
    } else if (arg.starts_with("--json=")) {
      options.json_path = std::string(arg.substr(7));
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
      return 2;
    }
  }

  std::printf("# bench_serve_cache: %zu sites, %zu threads, %.2fs per mode, Zipf(%.2f)\n",
              options.sites, options.threads, options.seconds, options.zipf_s);
  std::printf("# generating corpus...\n");
  const auto sites = make_corpus(options);

  std::vector<ModeResult> results;
  {
    serving::OriginOptions mode;  // the production configuration
    results.push_back(run_mode("cache+single-flight", sites, std::move(mode), options));
  }
  {
    serving::OriginOptions mode;
    mode.single_flight = false;
    results.push_back(run_mode("cache,no-collapse", sites, std::move(mode), options));
  }
  {
    serving::OriginOptions mode;
    mode.cache_enabled = false;
    results.push_back(run_mode("no-cache", sites, std::move(mode), options));
  }

  std::printf("\n%-20s %10s %12s %10s %10s %9s %8s %6s\n", "mode", "requests", "req/s",
              "p50(ms)", "p99(ms)", "hit_rate", "builds", "dups");
  for (const ModeResult& r : results) {
    std::printf("%-20s %10llu %12.0f %10.3f %10.2f %9.3f %8llu %6llu\n", r.name.c_str(),
                static_cast<unsigned long long>(r.requests), r.throughput(), r.p50_ms, r.p99_ms,
                r.hit_rate, static_cast<unsigned long long>(r.builds),
                static_cast<unsigned long long>(r.duplicate_builds));
  }
  const double speedup =
      results.back().throughput() == 0.0 ? 0.0 : results[0].throughput() / results.back().throughput();
  std::printf("\ncached throughput / uncached throughput: %.1fx\n", speedup);
  std::printf("duplicate builds: %llu with single-flight, %llu without\n",
              static_cast<unsigned long long>(results[0].duplicate_builds),
              static_cast<unsigned long long>(results[1].duplicate_builds));

  std::vector<Entry> entries;
  for (const ModeResult& r : results) {
    entries.push_back({r.name + "/throughput", "req_per_s", r.throughput()});
    entries.push_back({r.name + "/p50_latency", "ms", r.p50_ms});
    entries.push_back({r.name + "/p99_latency", "ms", r.p99_ms});
    entries.push_back({r.name + "/hit_rate", "ratio", r.hit_rate});
    entries.push_back({r.name + "/builds", "count", static_cast<double>(r.builds)});
    entries.push_back(
        {r.name + "/duplicate_builds", "count", static_cast<double>(r.duplicate_builds)});
  }
  entries.push_back({"cached_vs_uncached_throughput", "ratio", speedup});
  write_json(options.json_path, entries);
  std::printf("wrote %s\n", options.json_path.c_str());
  return 0;
}
