// Extension (paper §10 "Video"): what lite-video rendition ladders add on
// top of image+JS optimization, on media-heavy pages.
#include <iostream>

#include "analysis/report.h"
#include "core/hbs.h"
#include "dataset/corpus.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace aw4a;
  const int sites = argc > 1 ? std::atoi(argv[1]) : 8;
  analysis::print_header(
      std::cout, "Extension — lite video",
      "the paper defers video; it expects VP9/WebM-style rendition "
      "customization to make lite video plausible",
      std::to_string(sites) +
          " media-heavy pages (25% media share); HBS with/without the "
          "rendition ladder; R-D model quality floor 0.6");

  dataset::CorpusGenerator gen(dataset::CorpusOptions{.seed = 31337, .rich = true});
  dataset::CompositionProfile profile = gen.global_profile();
  profile.of(web::ObjectType::kMedia) = 0.25;
  profile.of(web::ObjectType::kImage) = 0.30;

  Rng rng(31337);
  TextTable table({"target", "mode", "met", "mean achieved", "mean QSS", "mean QMS"});
  for (double reduction : {0.3, 0.5}) {
    for (bool lite_video : {false, true}) {
      int met = 0;
      std::vector<double> achieved;
      std::vector<double> qss;
      std::vector<double> qms;
      Rng page_rng = rng.fork(static_cast<std::uint64_t>(reduction * 100));
      for (int s = 0; s < sites; ++s) {
        const web::WebPage page = gen.make_page(page_rng, from_mb(2.2), profile);
        core::LadderCache ladders;
        core::HbsOptions options;
        options.measure_qfs = false;
        options.media.enabled = lite_video;
        options.media.quality_floor = 0.6;
        const Bytes target = static_cast<Bytes>(
            static_cast<double>(page.transfer_size()) * (1.0 - reduction));
        const auto result =
            core::hbs_transcode(page, web::serve_original(page), target, ladders, options);
        met += result.met_target ? 1 : 0;
        achieved.push_back((1.0 - static_cast<double>(result.result_bytes) /
                                      static_cast<double>(page.transfer_size())) *
                           100.0);
        qss.push_back(result.quality.qss);
        qms.push_back(core::compute_qms(result.served));
      }
      table.add_row({fmt(reduction * 100, 0) + "%",
                     lite_video ? "images+JS+video" : "images+JS (paper)",
                     std::to_string(met) + "/" + std::to_string(sites),
                     fmt(mean(achieved), 1) + "%", fmt(mean(qss), 4), fmt(mean(qms), 3)});
    }
  }
  std::cout << table.render(2) << '\n';
  std::cout << "expected: with the ladder, deep targets are met more often and QSS\n"
               "stays higher (video absorbs bytes images would otherwise pay)\n";
  return 0;
}
