// Fig. 8: SSIM as a function of byte decrease for 100 images — the
// non-monotone, image-dependent relationship that makes the optimization
// hard (paper §6.2/§7.2).
#include <iostream>

#include "analysis/report.h"
#include "imaging/variants.h"
#include "util/table.h"
#include "util/rng.h"
#include "util/stats.h"

int main(int argc, char** argv) {
  using namespace aw4a;
  const int images = argc > 1 ? std::atoi(argv[1]) : 100;
  analysis::print_header(
      std::cout, "Fig. 8 — SSIM vs byte decrease",
      "per-image curves differ widely; some images are non-monotone in SSIM "
      "as bytes shrink (JPEG re-encoding)",
      std::to_string(images) + " synthetic images, resolution ladders, real codecs");

  Rng rng(8);
  std::cout << "series image_id,class,scale,kb_decrease,ssim\n";
  int non_monotone = 0;
  std::vector<double> ssim_at_half;
  for (int i = 0; i < images; ++i) {
    const imaging::ImageClass cls = imaging::sample_image_class(rng);
    const Bytes wire = static_cast<Bytes>(rng.uniform(20e3, 180e3));
    auto asset = std::make_shared<const imaging::SourceImage>(
        imaging::make_source_image(rng, cls, wire));
    imaging::LadderOptions options;
    options.min_ssim = 0.55;
    imaging::VariantLadder ladder(asset, options);
    double prev_ssim = 1.0;
    bool saw_increase = false;
    for (const auto& v : ladder.resolution_family(asset->format)) {
      const double kb_dec = to_kb(asset->wire_bytes - std::min(asset->wire_bytes, v.bytes));
      std::cout << "  " << i << "," << to_string(cls) << "," << fmt(v.scale, 2) << ","
                << fmt(kb_dec, 1) << "," << fmt(v.ssim, 4) << '\n';
      if (v.ssim > prev_ssim + 1e-4) saw_increase = true;
      prev_ssim = v.ssim;
      if (v.scale <= 0.52 && v.scale >= 0.48) ssim_at_half.push_back(v.ssim);
    }
    if (saw_increase) ++non_monotone;
  }
  std::cout << "\nimages with non-monotone SSIM-vs-bytes: " << non_monotone << "/" << images
            << "  (paper: 'some images show non-monotonic behavior')\n";
  if (!ssim_at_half.empty()) {
    std::cout << "SSIM spread at 0.5x resolution: " << summarize(ssim_at_half)
              << "  (paper: wide spread across images)\n";
  }
  return 0;
}
